(* Randomized differential test of the counting engine.

   The engine ({!Tenet_isl.Count}) layers closed-form tail summation,
   Faulhaber width sums, Gaussian substitution and a memo cache on top of
   plain enumeration; every one of those shortcuts must be invisible in
   the results.  So: generate random quasi-affine basic sets (bounded
   boxes with extra coupling inequalities, equalities and floor-division
   existentials) and compare [count_bset] / [iter_bset] / [make_mem_bset]
   / [count_union] against a brute-force oracle that enumerates the
   bounding box and checks constraints pointwise.  Div-defined
   existentials have a unique witness, which the oracle computes
   directly. *)

module Isl = Tenet_isl
module Bset = Isl.Bset
module Count = Isl.Count
module IM = Tenet_util.Int_math
module Obs = Tenet_obs

let rand_int st lo hi = lo + Random.State.int st (hi - lo + 1)

(* --- generator ------------------------------------------------------ *)

(* A random basic set together with the box bounding its visible dims.
   Every set is bounded (box constraints are always emitted), so the
   engine never raises [Unbounded]. *)
let gen_bset ?(nvis = 0) st : Bset.t * (int * int) array =
  let nvis = if nvis > 0 then nvis else rand_int st 1 3 in
  let ndivs = rand_int st 0 2 in
  let nvars = nvis + ndivs in
  let box =
    Array.init nvis (fun _ ->
        let lo = rand_int st (-3) 2 in
        (lo, lo + rand_int st 0 5))
  in
  let cons = ref [] in
  Array.iteri
    (fun i (lo, hi) ->
      let a = Array.make nvars 0 in
      a.(i) <- 1;
      cons := { Bset.a; k = -lo; eq = false } :: !cons;
      let a = Array.make nvars 0 in
      a.(i) <- -1;
      cons := { Bset.a; k = hi; eq = false } :: !cons)
    box;
  let defs =
    Array.init ndivs (fun e ->
        let num = Array.make nvars 0 in
        for v = 0 to nvis + e - 1 do
          num.(v) <- rand_int st (-2) 2
        done;
        Some { Bset.num; dk = rand_int st (-3) 3; den = rand_int st 2 4 })
  in
  for _ = 1 to rand_int st 0 3 do
    let a = Array.init nvars (fun _ -> rand_int st (-2) 2) in
    let eq = rand_int st 0 4 = 0 in
    (* equalities get a generous constant so a useful fraction of the
       generated sets stay nonempty *)
    let k = rand_int st (-4) (if eq then 8 else 6) in
    cons := { Bset.a; k; eq } :: !cons
  done;
  ({ Bset.nvis; defs; cons = !cons }, box)

(* A mod/fdiv-heavy random set shaped like the systems `Dataflow.theta`
   produces: loop dims tiled by floor divisions, plus "stamp" dims pinned
   by equalities to mod/fdiv/skew combinations of the loops.  This is the
   fragment the qpoly engine must sum in closed form — stamp equalities
   eliminate through div-defined existentials, div bound pairs cancel to
   width 1, and the loop box sums by Faulhaber. *)
let gen_bset_modheavy st : Bset.t * (int * int) array =
  let nloop = rand_int st 1 2 in
  let nstamp = rand_int st 1 2 in
  let nvis = nloop + nstamp in
  let ndivs = rand_int st 1 2 in
  let nvars = nvis + ndivs in
  let loop_box =
    Array.init nloop (fun _ ->
        let lo = rand_int st (-2) 1 in
        (lo, lo + rand_int st 3 12))
  in
  let cons = ref [] in
  Array.iteri
    (fun i (lo, hi) ->
      let a = Array.make nvars 0 in
      a.(i) <- 1;
      cons := { Bset.a; k = -lo; eq = false } :: !cons;
      let a = Array.make nvars 0 in
      a.(i) <- -1;
      cons := { Bset.a; k = hi; eq = false } :: !cons)
    loop_box;
  (* divs: e = floor((c*loop + k) / den) *)
  let divs =
    Array.init ndivs (fun _ ->
        let v = rand_int st 0 (nloop - 1) in
        let c = if rand_int st 0 3 = 0 then -1 else 1 in
        let k = rand_int st (-2) 2 in
        let den = rand_int st 2 4 in
        (v, c, k, den))
  in
  let defs =
    Array.map
      (fun (v, c, k, den) ->
        let num = Array.make nvars 0 in
        num.(v) <- c;
        Some { Bset.num; dk = k; den })
      divs
  in
  (* interval of the div value and of the mod remainder (c*v + k - den*e) *)
  let div_iv e =
    let v, c, k, den = divs.(e) in
    let lo, hi = loop_box.(v) in
    let a = (c * lo) + k and b = (c * hi) + k in
    (IM.fdiv (min a b) den, IM.fdiv (max a b) den)
  in
  (* stamp s = pattern over loops/divs, pinned by an equality; the box
     entry for s is the pattern's value interval *)
  let stamp_box =
    Array.init nstamp (fun _ ->
        let a = Array.make nvars 0 in
        let lo = ref 0 and hi = ref 0 in
        let n_terms = rand_int st 1 2 in
        for _ = 1 to n_terms do
          match rand_int st 0 2 with
          | 0 ->
              (* mod term: the emitted c*v - den*e equals
                 ((c*v + k) mod den) - k, so its value is in
                 [-k, den - 1 - k] exactly *)
              let e = rand_int st 0 (ndivs - 1) in
              let v, c, k, den = divs.(e) in
              a.(v) <- a.(v) + c;
              a.(nvis + e) <- a.(nvis + e) - den;
              lo := !lo - k;
              hi := !hi + den - 1 - k
          | 1 ->
              (* fdiv term: the div value itself *)
              let e = rand_int st 0 (ndivs - 1) in
              a.(nvis + e) <- a.(nvis + e) + 1;
              let dlo, dhi = div_iv e in
              lo := !lo + dlo;
              hi := !hi + dhi
          | _ ->
              (* skew term: a plain loop dim *)
              let v = rand_int st 0 (nloop - 1) in
              a.(v) <- a.(v) + 1;
              let vlo, vhi = loop_box.(v) in
              lo := !lo + vlo;
              hi := !hi + vhi
        done;
        (a, !lo, !hi))
  in
  Array.iteri
    (fun s (a, _, _) ->
      let eqa = Array.copy a in
      eqa.(nloop + s) <- -1;
      cons := { Bset.a = eqa; k = 0; eq = true } :: !cons)
    stamp_box;
  let box =
    Array.init nvis (fun i ->
        if i < nloop then loop_box.(i)
        else
          let _, lo, hi = stamp_box.(i - nloop) in
          (lo, hi))
  in
  ({ Bset.nvis; defs; cons = !cons }, box)

(* --- oracle --------------------------------------------------------- *)

let oracle_mem (b : Bset.t) (vis : int array) : bool =
  let nvars = Bset.nvars b in
  let full = Array.make nvars 0 in
  Array.blit vis 0 full 0 b.Bset.nvis;
  Array.iteri
    (fun e d ->
      match d with
      | Some (d : Bset.def) ->
          let s = ref d.Bset.dk in
          Array.iteri
            (fun v c -> if c <> 0 then s := !s + (c * full.(v)))
            d.Bset.num;
          full.(b.Bset.nvis + e) <- IM.fdiv !s d.Bset.den
      | None -> assert false)
    b.Bset.defs;
  List.for_all
    (fun (c : Bset.con) ->
      let s = ref c.Bset.k in
      Array.iteri (fun v coeff -> s := !s + (coeff * full.(v))) c.Bset.a;
      if c.Bset.eq then !s = 0 else !s >= 0)
    b.Bset.cons

let iter_box (box : (int * int) array) (f : int array -> unit) : unit =
  let n = Array.length box in
  let p = Array.make n 0 in
  let rec walk i =
    if i = n then f p
    else begin
      let lo, hi = box.(i) in
      for v = lo to hi do
        p.(i) <- v;
        walk (i + 1)
      done
    end
  in
  walk 0

let oracle_count (b : Bset.t) (box : (int * int) array) : int =
  let n = ref 0 in
  iter_box box (fun p -> if oracle_mem b p then incr n);
  !n

let oracle_points (b : Bset.t) (box : (int * int) array) : int array list =
  let acc = ref [] in
  iter_box box (fun p -> if oracle_mem b p then acc := Array.copy p :: !acc);
  List.sort compare !acc

let box_union (boxes : (int * int) array list) : (int * int) array =
  match boxes with
  | [] -> [||]
  | first :: rest ->
      let acc = Array.copy first in
      List.iter
        (Array.iteri (fun i (lo, hi) ->
             let alo, ahi = acc.(i) in
             acc.(i) <- (min alo lo, max ahi hi)))
        rest;
      acc

let show_bset (b : Bset.t) : string =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "nvis=%d ndivs=%d\n" b.Bset.nvis
                           (Array.length b.Bset.defs));
  Array.iter
    (function
      | Some (d : Bset.def) ->
          Buffer.add_string buf
            (Printf.sprintf "  div: num=[%s] dk=%d den=%d\n"
               (String.concat ";"
                  (Array.to_list (Array.map string_of_int d.Bset.num)))
               d.Bset.dk d.Bset.den)
      | None -> Buffer.add_string buf "  div: free\n")
    b.Bset.defs;
  List.iter
    (fun (c : Bset.con) ->
      Buffer.add_string buf
        (Printf.sprintf "  con: a=[%s] k=%d %s\n"
           (String.concat ";"
              (Array.to_list (Array.map string_of_int c.Bset.a)))
           c.Bset.k
           (if c.Bset.eq then "= 0" else ">= 0")))
    b.Bset.cons;
  Buffer.contents buf

(* --- tests ---------------------------------------------------------- *)

let n_single = 1200
let n_union = 400

let test_count_bset () =
  let st = Random.State.make [| 0x7e4e7 |] in
  for i = 1 to n_single do
    let b, box = gen_bset st in
    let expect = oracle_count b box in
    let got = Count.count_bset b in
    if got <> expect then
      Alcotest.failf "count_bset mismatch at case %d: oracle %d, engine %d\n%s"
        i expect got (show_bset b)
  done

let test_iter_bset () =
  let st = Random.State.make [| 0xa11ce |] in
  for i = 1 to n_single / 2 do
    let b, box = gen_bset st in
    let expect = oracle_points b box in
    let acc = ref [] in
    Count.iter_bset b (fun p -> acc := Array.copy p :: !acc);
    let got = List.sort compare !acc in
    if got <> expect then
      Alcotest.failf
        "iter_bset mismatch at case %d: oracle %d points, engine %d\n%s" i
        (List.length expect) (List.length got) (show_bset b);
    (* iter must also agree with count *)
    let n = Count.count_bset b in
    if n <> List.length got then
      Alcotest.failf "iter/count mismatch at case %d: %d tuples vs count %d\n%s"
        i (List.length got) n (show_bset b)
  done

let test_mem_bset () =
  let st = Random.State.make [| 0xbeef1 |] in
  for i = 1 to n_single / 4 do
    let b, box = gen_bset st in
    let mem = Count.make_mem_bset b in
    iter_box box (fun p ->
        let expect = oracle_mem b p in
        if mem p <> expect then
          Alcotest.failf
            "make_mem_bset mismatch at case %d on [%s]: oracle %b\n%s" i
            (String.concat ";" (Array.to_list (Array.map string_of_int p)))
            expect (show_bset b);
        if Count.mem_bset b p <> expect then
          Alcotest.failf "mem_bset mismatch at case %d: oracle %b\n%s" i expect
            (show_bset b))
  done

let test_count_union () =
  let st = Random.State.make [| 0x5e7e5 |] in
  for i = 1 to n_union do
    let nvis = rand_int st 1 3 in
    let k = rand_int st 2 4 in
    let parts = List.init k (fun _ -> gen_bset ~nvis st) in
    let bs = List.map fst parts in
    let boxes = List.map snd parts in
    let hull = box_union boxes in
    let expect = ref 0 in
    iter_box hull (fun p ->
        if List.exists (fun b -> oracle_mem b p) bs then incr expect);
    let got = Count.count_union bs in
    if got <> !expect then
      Alcotest.failf "count_union mismatch at case %d: oracle %d, engine %d\n%s"
        i !expect got
        (String.concat "---\n" (List.map show_bset bs));
    (* iter_union visits each union point exactly once *)
    let seen = Hashtbl.create 64 in
    Count.iter_union bs (fun p ->
        if Hashtbl.mem seen (Array.copy p) then
          Alcotest.failf "iter_union duplicate at case %d" i;
        Hashtbl.replace seen (Array.copy p) ());
    if Hashtbl.length seen <> !expect then
      Alcotest.failf "iter_union mismatch at case %d: oracle %d, engine %d" i
        !expect (Hashtbl.length seen)
  done

(* The mod/fdiv-heavy population vs the oracle, and proof (via telemetry)
   that these shapes actually take the symbolic qpoly path. *)
let test_count_modheavy () =
  Count.cache_clear ();
  Obs.reset ();
  Obs.enable ();
  let st = Random.State.make [| 0x30d4 |] in
  for i = 1 to 400 do
    let b, box = gen_bset_modheavy st in
    let expect = oracle_count b box in
    let got = Count.count_bset b in
    if got <> expect then
      Alcotest.failf
        "modheavy count_bset mismatch at case %d: oracle %d, engine %d\n%s" i
        expect got (show_bset b)
  done;
  Obs.disable ();
  let v name = Obs.value (Obs.counter name) in
  Alcotest.(check bool) "qpoly fires on mod/fdiv shapes" true
    (v "count.qpoly_hits" > 0)

(* The fig8/table3 shape: Θ of a 16^3 GEMM on an 8x8 PE array.  Both the
   pair count and the distinct-stamp count (a range projection whose
   stamps are defined through mod/fdiv existentials) must come out in
   closed form — near-zero enumerated points — and bit-identical to the
   known cardinalities. *)
let test_fig8_closed_form () =
  let module Ir = Tenet_ir in
  let module Df = Tenet_dataflow in
  Count.cache_clear ();
  Obs.reset ();
  Obs.enable ();
  let op = Ir.Kernels.gemm ~ni:16 ~nj:16 ~nk:16 in
  let df = Df.Zoo.gemm_ij_p_ijk_t () in
  let th = Df.Dataflow.theta op df in
  let pairs = Isl.Map.card th in
  let stamps = Isl.Set.card (Isl.Map.range th) in
  Obs.disable ();
  Alcotest.(check int) "theta pairs" (16 * 16 * 16) pairs;
  Alcotest.(check int) "theta stamps" (16 * 16 * 16) stamps;
  let v name = Obs.value (Obs.counter name) in
  Alcotest.(check bool) "qpoly fires on theta" true (v "count.qpoly_hits" > 0);
  let points = v "count.points_enumerated" in
  (* under TENET_COUNT_VERIFY=1 the sanitizer re-counts every set by
     enumeration on purpose, so the closed-form budget only applies to
     an unverified run *)
  if (not (Count.verify_mode ())) && points > 64 then
    Alcotest.failf
      "theta counting should be closed form; enumerated %d points" points

(* The random sets must actually exercise the closed-form machinery —
   otherwise this file would happily pass while testing only the slow
   path.  Telemetry proves coverage. *)
let test_fast_paths_exercised () =
  Obs.reset ();
  Obs.enable ();
  let st = Random.State.make [| 0xfa57 |] in
  for _ = 1 to 300 do
    let b, _ = gen_bset st in
    ignore (Count.count_bset b)
  done;
  Obs.disable ();
  let v name = Obs.value (Obs.counter name) in
  Alcotest.(check bool) "qpoly fires" true (v "count.qpoly_hits" > 0);
  Alcotest.(check bool) "enumeration-side escapes fire" true
    (v "count.closed_tail_hits" + v "count.faulhaber_hits"
     + v "count.closed_form_hits"
     > 0);
  Alcotest.(check bool) "cache consulted" true
    (v "count.cache_hits" + v "count.cache_misses" > 0)

let () =
  Alcotest.run "count_oracle"
    [
      ( "oracle",
        [
          Alcotest.test_case "count_bset vs brute force" `Quick test_count_bset;
          Alcotest.test_case "iter_bset vs brute force" `Quick test_iter_bset;
          Alcotest.test_case "membership vs brute force" `Quick test_mem_bset;
          Alcotest.test_case "count_union vs brute force" `Quick
            test_count_union;
          Alcotest.test_case "mod/fdiv-heavy vs brute force" `Quick
            test_count_modheavy;
          Alcotest.test_case "fig8 shapes are closed form" `Quick
            test_fig8_closed_form;
          Alcotest.test_case "fast paths exercised" `Quick
            test_fast_paths_exercised;
        ] );
    ]
