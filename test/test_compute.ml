(* Tests for the compute-centric notation (Timeloop/Interstellar
   baseline) and its compilation into relation-centric dataflows. *)

module Ir = Tenet.Ir
module Arch = Tenet.Arch
module Df = Tenet.Dataflow
module M = Tenet.Model
module Cc = Tenet_compute.Schedule
module Dse = Tenet.Dse.Dse

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let gemm = Ir.Kernels.gemm ~ni:16 ~nj:16 ~nk:16

let test_compile_os () =
  let df = Cc.to_dataflow gemm (Cc.gemm_output_stationary ~p:8 ()) in
  check_int "space dims" 2 (Df.Dataflow.n_space df);
  check_int "time dims" 3 (Df.Dataflow.n_time df);
  match Df.Dataflow.first_violation gemm df (Arch.Pe_array.d2 8 8) with
  | None -> ()
  | Some msg -> Alcotest.fail msg

let test_compute_centric_is_expressible () =
  (* Table I containment: every compute-centric schedule lands in the
     data-centric-expressible subspace *)
  List.iter
    (fun sched ->
      let df = Cc.to_dataflow gemm sched in
      check_bool (df.Df.Dataflow.name ^ " expressible") true
        (Dse.data_centric_expressible df))
    [ Cc.gemm_output_stationary (); Cc.gemm_weight_stationary () ];
  let conv = Ir.Kernels.conv2d ~nk:8 ~nc:8 ~nox:4 ~noy:4 ~nrx:3 ~nry:3 in
  check_bool "conv schedule expressible" true
    (Dse.data_centric_expressible
       (Cc.to_dataflow conv (Cc.conv_channel_parallel ())))

let test_os_equals_zoo_unskewed () =
  (* the compiled OS schedule gives the same volumes as the hand-written
     zoo dataflow modulo the skew (which only affects pipelining) *)
  let spec = Arch.Repository.tpu_like () in
  let df = Cc.to_dataflow gemm (Cc.gemm_output_stationary ~p:8 ()) in
  let m = M.Concrete.analyze spec gemm df in
  let y = (M.Metrics.find_tensor m "Y").M.Metrics.volumes in
  check_int "Y unique = footprint" 256 y.M.Metrics.unique;
  (* each of the 256 output elements is revisited for all 16 k values *)
  check_int "Y temporal reuse" (4096 - 256) y.M.Metrics.temporal_reuse

let test_coverage_validation () =
  let bad_missing =
    Cc.make ~tiles:[ ("i", 8); ("j", 8) ]
      ~order:[ Cc.outer "i"; Cc.outer "j" ] (* k missing *)
      ~parallel:[ Cc.inner "i"; Cc.inner "j" ]
      ()
  in
  check_bool "missing dim" true
    (match Cc.to_dataflow gemm bad_missing with
    | _ -> false
    | exception Cc.Ill_formed _ -> true);
  let bad_double =
    Cc.make
      ~order:[ Cc.full "i"; Cc.full "i"; Cc.full "j"; Cc.full "k" ]
      ~parallel:[] ()
  in
  check_bool "doubled dim" true
    (match Cc.to_dataflow gemm bad_double with
    | _ -> false
    | exception Cc.Ill_formed _ -> true);
  let bad_untied =
    Cc.make ~order:[ Cc.outer "i"; Cc.full "j"; Cc.full "k" ]
      ~parallel:[ Cc.inner "i" ] ()
  in
  check_bool "untiled outer/inner" true
    (match Cc.to_dataflow gemm bad_untied with
    | _ -> false
    | exception Cc.Ill_formed _ -> true);
  let bad_3par =
    Cc.make ~order:[]
      ~parallel:[ Cc.full "i"; Cc.full "j"; Cc.full "k" ]
      ()
  in
  check_bool "3 parallel loops" true
    (match Cc.to_dataflow gemm bad_3par with
    | _ -> false
    | exception Cc.Ill_formed _ -> true)

let test_to_string () =
  let s = Cc.to_string (Cc.gemm_output_stationary ~p:8 ()) in
  check_bool "mentions tiles" true (String.length s > 10)

(* property: compiled schedules are always valid on a big-enough array
   and never skewed *)
let prop_compiled_valid =
  QCheck.Test.make ~name:"compiled schedules valid & unskewed" ~count:30
    QCheck.(pair (int_range 2 8) (int_range 2 8))
    (fun (p, q) ->
      let op = Ir.Kernels.gemm ~ni:(2 * p) ~nj:(2 * q) ~nk:4 in
      let sched =
        Cc.make
          ~tiles:[ ("i", p); ("j", q) ]
          ~order:[ Cc.outer "i"; Cc.outer "j"; Cc.full "k" ]
          ~parallel:[ Cc.inner "i"; Cc.inner "j" ]
          ()
      in
      let df = Cc.to_dataflow op sched in
      Dse.data_centric_expressible df
      && Df.Dataflow.first_violation op df (Arch.Pe_array.make [| p; q |])
         = None)

let () =
  Alcotest.run "compute"
    [
      ( "schedule",
        [
          Alcotest.test_case "compile OS gemm" `Quick test_compile_os;
          Alcotest.test_case "expressibility containment" `Quick
            test_compute_centric_is_expressible;
          Alcotest.test_case "OS volumes" `Quick test_os_equals_zoo_unskewed;
          Alcotest.test_case "coverage validation" `Quick
            test_coverage_validation;
          Alcotest.test_case "to_string" `Quick test_to_string;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_compiled_valid ] );
    ]
