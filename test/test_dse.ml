(* Tests for the design-space exploration module. *)

module Ir = Tenet.Ir
module Arch = Tenet.Arch
module Df = Tenet.Dataflow
module M = Tenet.Model
module Dse = Tenet.Dse.Dse

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_candidate_counts () =
  let op = Ir.Kernels.gemm ~ni:8 ~nj:8 ~nk:8 in
  (* 2D: 6 ordered pairs x 1 remaining inner dim x 2 (skew or not) *)
  check_int "gemm 2D" 12 (List.length (Dse.candidates_2d op ~p:4));
  (* 1D: 3 choices of spatial dim x 2 inner dims *)
  check_int "gemm 1D" 6 (List.length (Dse.candidates_1d op ~p:8));
  let conv = Ir.Kernels.conv2d ~nk:4 ~nc:4 ~nox:4 ~noy:4 ~nrx:3 ~nry:3 in
  (* 30 ordered pairs x 4 inner x 2 *)
  check_int "conv 2D" 240 (List.length (Dse.candidates_2d conv ~p:4));
  (* with outer permutations: 30 x 4 x 2 x 3! *)
  check_int "conv 2D permuted" 1440
    (List.length (Dse.candidates_2d ~permute_outer:true conv ~p:4))

let test_unique_names () =
  let op = Ir.Kernels.gemm ~ni:8 ~nj:8 ~nk:8 in
  let names =
    List.map (fun d -> d.Df.Dataflow.name) (Dse.candidates_2d op ~p:4)
  in
  check_int "names distinct" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_search_finds_tpu_class () =
  (* on a square GEMM the known-good dataflows must be near the top *)
  let op = Ir.Kernels.gemm ~ni:16 ~nj:16 ~nk:16 in
  let spec = Arch.Repository.tpu_like ~bandwidth:8 () in
  let cands = Dse.candidates_2d op ~p:8 in
  match Dse.best spec op cands with
  | None -> Alcotest.fail "no valid dataflow found"
  | Some o ->
      check_bool "best latency sane" true (o.Dse.metrics.M.Metrics.latency > 0.)

let test_expressible_subset () =
  let op = Ir.Kernels.gemm ~ni:16 ~nj:16 ~nk:16 in
  let spec = Arch.Repository.tpu_like ~bandwidth:8 () in
  let cands = Dse.candidates_2d op ~p:8 in
  let all = Dse.evaluate_all ~objective:Dse.Latency spec op cands in
  let expressible = List.filter (fun o -> o.Dse.expressible) all in
  check_bool "strict subset" true
    (List.length expressible < List.length all && expressible <> []);
  (* the skewed candidates must be classified inexpressible *)
  List.iter
    (fun o ->
      let skewed =
        List.exists
          (fun e ->
            List.length
              (List.sort_uniq compare (Tenet.Isl.Aff.free_vars e))
            > 1)
          o.Dse.dataflow.Df.Dataflow.time
      in
      if skewed then check_bool "skewed -> inexpressible" false o.Dse.expressible)
    all

let test_fig6_direction () =
  (* at low bandwidth, the best relation-centric dataflow must beat or
     match the best data-centric-expressible one (Fig 6's claim); one
     [best_pair] sweep answers both sides *)
  let op = Ir.Kernels.gemm ~ni:16 ~nj:16 ~nk:16 in
  let cands = Dse.candidates_2d op ~p:8 @ Dse.candidates_1d op ~p:64 in
  List.iter
    (fun bw ->
      let spec = Arch.Repository.tpu_like ~bandwidth:bw () in
      match Dse.best_pair spec op cands with
      | Some b, Some be ->
          check_bool
            (Printf.sprintf "bw=%d: tenet <= data-centric" bw)
            true
            (b.Dse.metrics.M.Metrics.latency
            <= be.Dse.metrics.M.Metrics.latency)
      | _ -> Alcotest.fail "search failed")
    [ 2; 8; 64 ]

let test_best_pair_consistent () =
  let op = Ir.Kernels.gemm ~ni:16 ~nj:16 ~nk:16 in
  let spec = Arch.Repository.tpu_like ~bandwidth:8 () in
  let cands = Dse.candidates_2d op ~p:8 in
  let b, be = Dse.best_pair spec op cands in
  let name o = (Option.get o).Dse.dataflow.Df.Dataflow.name in
  check_bool "best agrees" true
    (String.equal (name b) (name (Dse.best spec op cands)));
  check_bool "best_expressible agrees" true
    (String.equal (name be) (name (Dse.best_expressible spec op cands)))

let test_invalid_candidates_dropped () =
  (* a 16-wide PE request on an 8x8 array: all 2D candidates with p=16
     are invalid and must be silently dropped *)
  let op = Ir.Kernels.gemm ~ni:32 ~nj:32 ~nk:32 in
  let spec = Arch.Repository.tpu_like ~n:8 () in
  let cands = Dse.candidates_2d op ~p:16 in
  check_int "all dropped" 0
    (List.length (Dse.evaluate_all ~objective:Dse.Latency spec op cands))

let test_objectives () =
  let op = Ir.Kernels.gemm ~ni:16 ~nj:16 ~nk:16 in
  let spec = Arch.Repository.tpu_like ~bandwidth:4 () in
  let cands = Dse.candidates_2d op ~p:8 in
  let by_lat = Option.get (Dse.best ~objective:Dse.Latency spec op cands) in
  let by_en = Option.get (Dse.best ~objective:Dse.Energy spec op cands) in
  let by_sbw = Option.get (Dse.best ~objective:Dse.Sbw spec op cands) in
  (* each winner is optimal under its own objective *)
  let all = Dse.evaluate_all ~objective:Dse.Latency spec op cands in
  List.iter
    (fun o ->
      check_bool "latency opt" true
        (by_lat.Dse.metrics.M.Metrics.latency <= o.Dse.metrics.M.Metrics.latency);
      check_bool "energy opt" true
        (by_en.Dse.metrics.M.Metrics.energy <= o.Dse.metrics.M.Metrics.energy);
      check_bool "sbw opt" true
        (by_sbw.Dse.metrics.M.Metrics.sbw <= o.Dse.metrics.M.Metrics.sbw))
    all

(* ------------------------------------------------------------------ *)
(* Mapper soundness: the pruned and heuristic modes against the        *)
(* exhaustive oracle.                                                  *)
(* ------------------------------------------------------------------ *)

(* Byte-level metric identity, name included: pruning is only sound if
   the winner is the same mapping with the same numbers. *)
let metrics_key (o : Dse.outcome) : string =
  Tenet.Obs.Json.to_string (M.Metrics.to_json o.Dse.metrics)

let first_expressible outcomes =
  List.find_opt (fun o -> o.Dse.expressible) outcomes

(* A spread of shapes: square (transpose symmetry live), non-square and
   rectangular meshes (transpose disabled), 1D, lex-step adjacency
   (symmetry disabled entirely), and outer-order permutations. *)
let mapper_subjects () =
  let gemm = Ir.Kernels.gemm ~ni:16 ~nj:16 ~nk:16 in
  let conv = Ir.Kernels.conv2d ~nk:4 ~nc:4 ~nox:4 ~noy:4 ~nrx:3 ~nry:3 in
  [
    ( "gemm/tpu8",
      Arch.Repository.tpu_like ~bandwidth:8 (),
      gemm,
      `Inner_step,
      Dse.candidates_2d gemm ~p:8 @ Dse.candidates_1d gemm ~p:64 );
    ( "gemm/tpu8/bw2",
      Arch.Repository.tpu_like ~bandwidth:2 (),
      gemm,
      `Inner_step,
      Dse.candidates_2d gemm ~p:8 );
    ( "conv/tpu4/permuted",
      Arch.Repository.tpu_like ~n:4 ~bandwidth:8 (),
      conv,
      `Inner_step,
      Dse.candidates_2d ~permute_outer:true conv ~p:4 );
    ( "gemm/mesh4x8",
      Arch.Repository.mesh_array ~rows:4 ~cols:8 ~bandwidth:8 (),
      gemm,
      `Inner_step,
      Dse.candidates_2d gemm ~p:4 );
    ( "gemm/eyeriss",
      Arch.Repository.eyeriss_like ~bandwidth:8 (),
      gemm,
      `Inner_step,
      Dse.candidates_2d gemm ~p:8 );
    ( "gemm/1d",
      Arch.Repository.systolic_1d ~n:16 ~bandwidth:8 (),
      gemm,
      `Inner_step,
      Dse.candidates_1d gemm ~p:16 );
    ( "gemm/tpu8/lex",
      Arch.Repository.tpu_like ~bandwidth:8 (),
      gemm,
      `Lex_step,
      Dse.candidates_2d gemm ~p:8 );
  ]

let with_jobs n f =
  let old = Tenet.Util.Parallel.jobs () in
  Tenet.Util.Parallel.set_jobs n;
  Fun.protect ~finally:(fun () -> Tenet.Util.Parallel.set_jobs old) f

let test_pruned_matches_oracle () =
  List.iter
    (fun (name, spec, op, adjacency, cands) ->
      let oracle =
        Dse.search ~adjacency ~mode:Dse.Exhaustive ~objective:Dse.Latency spec
          op cands
      in
      List.iter
        (fun jobs ->
          with_jobs jobs @@ fun () ->
          let pruned =
            Dse.search ~adjacency ~mode:Dse.Pruned ~objective:Dse.Latency spec
              op cands
          in
          let head r = List.nth_opt r.Dse.outcomes 0 in
          let opt_key = Option.map metrics_key in
          Alcotest.(check (option string))
            (Printf.sprintf "%s jobs=%d: best identical" name jobs)
            (opt_key (head oracle)) (opt_key (head pruned));
          Alcotest.(check (option string))
            (Printf.sprintf "%s jobs=%d: best expressible identical" name jobs)
            (opt_key (first_expressible oracle.Dse.outcomes))
            (opt_key (first_expressible pruned.Dse.outcomes));
          (* every surviving outcome, twins included, must byte-match
             the oracle's metrics for the same dataflow *)
          let tbl = Hashtbl.create 256 in
          List.iter
            (fun o ->
              Hashtbl.replace tbl o.Dse.dataflow.Df.Dataflow.name
                (metrics_key o))
            oracle.Dse.outcomes;
          List.iter
            (fun o ->
              match Hashtbl.find_opt tbl o.Dse.dataflow.Df.Dataflow.name with
              | None ->
                  Alcotest.failf "%s: %s not in oracle" name
                    o.Dse.dataflow.Df.Dataflow.name
              | Some k ->
                  Alcotest.(check string)
                    (Printf.sprintf "%s: %s metrics" name
                       o.Dse.dataflow.Df.Dataflow.name)
                    k (metrics_key o))
            pruned.Dse.outcomes;
          check_bool
            (Printf.sprintf "%s: pruning accounted" name)
            true
            (pruned.Dse.stats.Dse.evaluated <= oracle.Dse.stats.Dse.evaluated))
        [ 1; 4 ])
    (mapper_subjects ())

let test_search_sizes_template_reuse () =
  (* the conv sweep across sizes: the first size pays a full search, the
     rest must be answered mostly by template reuse — and every reused
     score must byte-match a fresh concrete evaluation at that size *)
  let spec = Arch.Repository.tpu_like ~n:4 () in
  let op = Ir.Kernels.conv2d ~nk:4 ~nc:12 ~nox:12 ~noy:12 ~nrx:3 ~nry:3 in
  (* a thinned candidate pool keeps the base search and the per-template
     fits affordable; reuse behavior is independent of pool size *)
  let cands =
    List.filteri (fun i _ -> i mod 10 = 0) (Dse.candidates_2d op ~p:4)
  in
  let sizes =
    [
      [ ("c", 12); ("ox", 12); ("oy", 12) ];
      [ ("c", 12); ("ox", 20); ("oy", 16) ];
      [ ("c", 12); ("ox", 16); ("oy", 20) ];
    ]
  in
  let results =
    Dse.search_sizes ~mode:Dse.Pruned ~objective:Dse.Latency ~top:4 spec op
      cands ~sizes
  in
  check_int "one result per size" (List.length sizes) (List.length results);
  let rest = List.tl results in
  check_bool "template reuse on later sizes" true
    (List.exists (fun (_, r) -> r.Dse.stats.Dse.template_reuse > 0) rest);
  List.iter
    (fun (sz, r) ->
      check_bool "prune/stat accounting partitions the survivors" true
        (r.Dse.stats.Dse.template_reuse + r.Dse.stats.Dse.evaluated
        = r.Dse.stats.Dse.generated);
      List.iter
        (fun (o : Dse.outcome) ->
          let opn = M.Template.shrink_op op sz in
          let reference = M.Concrete.analyze spec opn o.Dse.dataflow in
          Alcotest.(check string)
            (Printf.sprintf "%s at %s"
               o.Dse.dataflow.Df.Dataflow.name
               (String.concat ","
                  (List.map
                     (fun (d, e) -> Printf.sprintf "%s=%d" d e)
                     sz)))
            (Tenet.Obs.Json.to_string (M.Metrics.to_json reference))
            (metrics_key o))
        r.Dse.outcomes)
    rest;
  (* first entry is the full search at the first size: identical to a
     direct search on the resized op *)
  let direct =
    Dse.search ~mode:Dse.Pruned ~objective:Dse.Latency spec
      (M.Template.shrink_op op (List.hd sizes))
      cands
  in
  let _, base = List.hd results in
  Alcotest.(check (list string))
    "base search identical to direct search"
    (List.map metrics_key direct.Dse.outcomes)
    (List.map metrics_key base.Dse.outcomes)

let test_heuristic_finds_best () =
  List.iter
    (fun (name, spec, op, adjacency, cands) ->
      let oracle =
        Dse.search ~adjacency ~mode:Dse.Exhaustive ~objective:Dse.Latency spec
          op cands
      in
      let budget = max 1 (List.length cands / 4) in
      let heur =
        Dse.search ~adjacency ~mode:Dse.Heuristic ~budget
          ~objective:Dse.Latency spec op cands
      in
      check_bool
        (Printf.sprintf "%s: within budget" name)
        true
        (heur.Dse.stats.Dse.evaluated <= budget);
      match (oracle.Dse.outcomes, heur.Dse.outcomes) with
      | [], [] -> ()
      | o :: _, h :: _ ->
          Alcotest.(check string)
            (Printf.sprintf "%s: heuristic best identical" name)
            (metrics_key o) (metrics_key h)
      | _ -> Alcotest.failf "%s: outcome presence differs" name)
    (mapper_subjects ())

let test_search_deterministic_across_jobs () =
  let op = Ir.Kernels.conv2d ~nk:4 ~nc:4 ~nox:4 ~noy:4 ~nrx:3 ~nry:3 in
  let spec = Arch.Repository.tpu_like ~n:4 ~bandwidth:8 () in
  let cands = Dse.candidates_2d ~permute_outer:true op ~p:4 in
  let digest mode =
    List.map metrics_key
      (Dse.search ~mode ~objective:Dse.Latency spec op cands).Dse.outcomes
    |> String.concat "\n" |> Digest.string |> Digest.to_hex
  in
  List.iter
    (fun mode ->
      let d1 = with_jobs 1 (fun () -> digest mode) in
      let d4 = with_jobs 4 (fun () -> digest mode) in
      Alcotest.(check string) "jobs 1 = jobs 4" d1 d4)
    [ Dse.Exhaustive; Dse.Pruned; Dse.Heuristic ]

let test_prechecker_matches_precheck () =
  (* the staged prechecker used as the mapper's hard tier must agree
     with the diagnostic-producing precheck on every candidate *)
  let module An = Tenet.Analysis in
  List.iter
    (fun (name, spec, op, _, cands) ->
      let pc = An.Checker.prechecker spec op in
      List.iter
        (fun df ->
          check_bool
            (Printf.sprintf "%s: %s" name df.Df.Dataflow.name)
            (An.Diagnostic.errors (An.Checker.precheck spec op df) = [])
            (pc df))
        cands)
    (mapper_subjects ())

let test_search_stats_add_up () =
  let op = Ir.Kernels.gemm ~ni:16 ~nj:16 ~nk:16 in
  let spec = Arch.Repository.tpu_like ~bandwidth:8 () in
  let cands = Dse.candidates_2d op ~p:8 @ Dse.candidates_1d op ~p:64 in
  let r = Dse.search ~mode:Dse.Pruned ~objective:Dse.Latency spec op cands in
  let st = r.Dse.stats in
  check_int "generated" (List.length cands) st.Dse.generated;
  (* in pruned mode every candidate lands in exactly one bucket:
     precheck-rejected, folded into a class rep (symmetry), a dominated
     rep, or submitted for full evaluation *)
  check_int "partition" st.Dse.generated
    (st.Dse.pruned_precheck + st.Dse.pruned_symmetry + st.Dse.pruned_capacity
   + st.Dse.pruned_dominated + st.Dse.evaluated)

(* --- the capacity prune tier (TN014-TN018 as a mapper filter) ------- *)

let generous spec =
  Arch.Spec.with_capacities ~scratchpad_bytes:(1 lsl 22) ~pe_regs:64
    ~link_width:8 ~pe_ports:8 ~max_fanout:64 ~dram_bw:4096 spec

let test_capacity_prune_oracle () =
  let op = Ir.Kernels.gemm ~ni:16 ~nj:16 ~nk:16 in
  let cands = Dse.candidates_2d op ~p:8 @ Dse.candidates_1d op ~p:64 in
  (* generous capacities: nothing is provably infeasible, so the pruned
     search returns the oracle's best byte-for-byte *)
  let spec = generous (Arch.Repository.tpu_like ~bandwidth:8 ()) in
  let oracle =
    Dse.search ~mode:Dse.Exhaustive ~objective:Dse.Latency spec op cands
  in
  let pruned =
    Dse.search ~mode:Dse.Pruned ~objective:Dse.Latency spec op cands
  in
  check_int "no prune at generous caps" 0
    pruned.Dse.stats.Dse.pruned_capacity;
  let opt_key r = Option.map metrics_key (List.nth_opt r.Dse.outcomes 0) in
  Alcotest.(check (option string))
    "best identical" (opt_key oracle) (opt_key pruned)

let test_capacity_prune_fires () =
  let op = Ir.Kernels.gemm ~ni:16 ~nj:16 ~nk:16 in
  let cands = Dse.candidates_2d op ~p:8 in
  (* a 64-byte scratchpad cannot hold any 8x8 mapping's working set:
     the tier must reject candidates, and only with a proof — every
     survivor's metrics still byte-match the oracle *)
  let spec =
    Arch.Spec.with_capacities ~scratchpad_bytes:64
      (Arch.Repository.tpu_like ~bandwidth:8 ())
  in
  let oracle =
    Dse.search ~mode:Dse.Exhaustive ~objective:Dse.Latency spec op cands
  in
  let pruned =
    Dse.search ~mode:Dse.Pruned ~objective:Dse.Latency spec op cands
  in
  let st = pruned.Dse.stats in
  check_bool "tier fires" true (st.Dse.pruned_capacity > 0);
  check_int "partition with capacity tier" st.Dse.generated
    (st.Dse.pruned_precheck + st.Dse.pruned_symmetry + st.Dse.pruned_capacity
   + st.Dse.pruned_dominated + st.Dse.evaluated);
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun o ->
      Hashtbl.replace tbl o.Dse.dataflow.Df.Dataflow.name (metrics_key o))
    oracle.Dse.outcomes;
  List.iter
    (fun o ->
      match Hashtbl.find_opt tbl o.Dse.dataflow.Df.Dataflow.name with
      | None ->
          Alcotest.failf "%s not in oracle" o.Dse.dataflow.Df.Dataflow.name
      | Some k ->
          Alcotest.(check string) o.Dse.dataflow.Df.Dataflow.name k
            (metrics_key o))
    pruned.Dse.outcomes;
  (* exhaustive mode never applies the tier *)
  check_int "oracle untouched" 0 oracle.Dse.stats.Dse.pruned_capacity

let () =
  Alcotest.run "dse"
    [
      ( "generation",
        [
          Alcotest.test_case "candidate counts" `Quick test_candidate_counts;
          Alcotest.test_case "unique names" `Quick test_unique_names;
        ] );
      ( "search",
        [
          Alcotest.test_case "finds valid" `Quick test_search_finds_tpu_class;
          Alcotest.test_case "expressible subset" `Quick test_expressible_subset;
          Alcotest.test_case "fig6 direction" `Quick test_fig6_direction;
          Alcotest.test_case "invalid dropped" `Quick
            test_invalid_candidates_dropped;
          Alcotest.test_case "objectives" `Quick test_objectives;
          Alcotest.test_case "best_pair consistent" `Quick
            test_best_pair_consistent;
        ] );
      ( "mapper",
        [
          Alcotest.test_case "pruned matches oracle" `Quick
            test_pruned_matches_oracle;
          Alcotest.test_case "search_sizes template reuse" `Quick
            test_search_sizes_template_reuse;
          Alcotest.test_case "heuristic finds best" `Quick
            test_heuristic_finds_best;
          Alcotest.test_case "deterministic across jobs" `Quick
            test_search_deterministic_across_jobs;
          Alcotest.test_case "prechecker = precheck" `Quick
            test_prechecker_matches_precheck;
          Alcotest.test_case "stats partition" `Quick test_search_stats_add_up;
          Alcotest.test_case "capacity prune = oracle" `Quick
            test_capacity_prune_oracle;
          Alcotest.test_case "capacity prune fires" `Quick
            test_capacity_prune_fires;
        ] );
    ]
