(* Tests for the pre-fork worker fleet (Tenet.Serve.Fleet).

   These live in their own executable because the fleet must fork its
   workers before any domain is spawned — the OCaml 5 runtime refuses
   Unix.fork once other domains exist.  Everything here is therefore
   ordered: every fork (fleet creation, the crash-safety writer
   children) happens first, and the in-parent baseline evaluation —
   which may touch the domain pool — runs last, inside the same single
   test case. *)

module Api = Tenet.Serve.Api
module Protocol = Tenet.Serve.Protocol
module Config = Tenet.Serve.Config
module Fleet = Tenet.Serve.Fleet
module Disk_cache = Tenet.Serve.Disk_cache
module Json = Tenet.Obs.Json

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let found = ref false in
  for i = 0 to nh - nn do
    if String.sub hay i nn = needle then found := true
  done;
  !found

let analyze_line ~id sizes =
  Json.to_string
    (Api.Request.to_json
       { (Api.Request.default Api.Request.Analyze) with Api.Request.id; sizes })

(* A mix of sizes so responses differ, with repeats so worker caches see
   hits — neither may perturb the output bytes. *)
let requests =
  List.init 9 (fun i ->
      analyze_line
        ~id:(Printf.sprintf "r%d" i)
        [ 8 + (i mod 3); 8; 8 ])

let temp_dir () =
  let path = Filename.temp_file "tenet-fleet" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Run a channel-shaped entry point over temp files: loss-free plumbing
   with no pipe-buffer deadlock risk. *)
let via_files (f : in_channel -> out_channel -> unit) (input : string) :
    string =
  let in_path = Filename.temp_file "tenet-fleet" ".in" in
  let out_path = Filename.temp_file "tenet-fleet" ".out" in
  let oc0 = open_out_bin in_path in
  output_string oc0 input;
  close_out oc0;
  let ic = open_in_bin in_path in
  let oc = open_out_bin out_path in
  Fun.protect
    ~finally:(fun () ->
      close_in_noerr ic;
      close_out_noerr oc)
    (fun () -> f ic oc);
  let out = read_file out_path in
  Sys.remove in_path;
  Sys.remove out_path;
  out

let lines s = String.split_on_char '\n' s |> List.filter (fun l -> l <> "")

(* Kill a cache writer mid-write, repeatedly, and assert the reader
   always sees a complete, consistent file: either alternating set in
   full, never a torn hybrid (the atomic tmp+rename contract). *)
let crash_safety_rounds () =
  let dir = temp_dir () in
  let entry body i =
    { Disk_cache.key = Printf.sprintf "k%02d" i; body }
  in
  let set_a = List.init 20 (entry "A") in
  let set_b = List.init 20 (entry "B") in
  for _round = 1 to 8 do
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
        (try
           while true do
             Disk_cache.save ~dir set_a;
             Disk_cache.save ~dir set_b
           done
         with _ -> ());
        exit 0
    | pid -> (
        Unix.sleepf 0.02;
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid);
        match Disk_cache.load ~dir with
        | [] -> () (* killed before the first rename landed *)
        | es ->
            check_int "complete set" 20 (List.length es);
            let bodies =
              List.sort_uniq compare
                (List.map (fun e -> e.Disk_cache.body) es)
            in
            check_bool "no torn hybrid" true
              (bodies = [ "A" ] || bodies = [ "B" ]))
  done

let test_fleet () =
  let input = String.concat "\n" requests ^ "\n" in
  (* 1: batch across 3 workers (forks) *)
  let cfg3 = { Config.default with Config.workers = 3 } in
  let batch_out = via_files (Fleet.batch cfg3) input in
  (* 2: a serve session across 2 workers, with an inline stats probe
     (forks) *)
  let serve_input =
    String.concat "\n" (requests @ [ {|{"cmd":"stats","id":"s!"}|} ]) ^ "\n"
  in
  let cfg2 = { Config.default with Config.workers = 2 } in
  let serve_out = via_files (Fleet.serve cfg2) serve_input in
  (* 3: crash-safety writer kills (forks) *)
  crash_safety_rounds ();
  (* 4: the in-parent baseline, after every fork: the exact bytes the
     single-process batch runner prints for the same lines *)
  let baseline =
    List.map
      (fun l -> Protocol.response_line (Protocol.handle_line l))
      requests
  in
  check_string "fleet batch byte-identical to one-shot"
    (String.concat "\n" baseline ^ "\n")
    batch_out;
  (* the session answers in completion order: same response multiset,
     plus the stats line *)
  let serve_lines = lines serve_out in
  check_int "every request answered" (List.length requests + 1)
    (List.length serve_lines);
  let stats_lines, response_lines =
    List.partition (fun l -> contains l {|"id":"s!"|}) serve_lines
  in
  check_int "stats answered inline" 1 (List.length stats_lines);
  check_bool "stats is a stats payload" true
    (contains (List.hd stats_lines) {|"kind":"stats"|});
  check_bool "session responses match one-shot bytes" true
    (List.sort compare response_lines = List.sort compare baseline)

let () =
  Alcotest.run "fleet"
    [ ( "fleet",
        [ Alcotest.test_case "batch + session + crash safety" `Quick test_fleet ]
      ) ]
