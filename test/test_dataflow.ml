(* Tests for tenet.dataflow: Θ construction, validation, the Table III
   zoo, and spacetime-map channels. *)

module Isl = Tenet.Isl
module Ir = Tenet.Ir
module Arch = Tenet.Arch
module Df = Tenet.Dataflow

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fig3_df =
  Df.Dataflow.make ~name:"fig3"
    ~space:Isl.Aff.[ Var "i"; Var "j" ]
    ~time:Isl.Aff.[ Add (Add (Var "i", Var "j"), Var "k") ]

let test_theta_fig3 () =
  let op = Ir.Kernels.gemm ~ni:2 ~nj:2 ~nk:4 in
  let th = Df.Dataflow.theta op fig3_df in
  check_int "pairs" 16 (Isl.Map.card th);
  check_bool "injective" true (Isl.Map.is_injective th);
  match Isl.Map.eval th [| 1; 0; 2 |] with
  | Some st ->
      check_int "p0" 1 st.(0);
      check_int "p1" 0 st.(1);
      check_int "t" 3 st.(2)
  | None -> Alcotest.fail "in domain"

let test_validate_ok () =
  let op = Ir.Kernels.gemm ~ni:2 ~nj:2 ~nk:4 in
  match Df.Dataflow.first_violation op fig3_df (Arch.Pe_array.d2 2 2) with
  | None -> ()
  | Some msg -> Alcotest.fail msg

let test_validate_out_of_array () =
  let op = Ir.Kernels.gemm ~ni:4 ~nj:2 ~nk:4 in
  (match Df.Dataflow.bounds_violation op fig3_df (Arch.Pe_array.d2 2 2) with
  | Some (dim, (_, hi), extent) ->
      check_int "escaping dim" 0 dim;
      check_bool "interval escapes" true (hi >= extent)
  | None -> Alcotest.fail "expected a bounds violation");
  match Df.Dataflow.first_violation op fig3_df (Arch.Pe_array.d2 2 2) with
  | Some msg -> check_bool "message mentions span" true
      (String.length msg > 0)
  | None -> Alcotest.fail "expected a violation message"

let test_validate_conflict () =
  (* time-stamp [k] alone collides instances with equal (i, j, k)?? no —
     collides instances sharing PE and k is fine; use a degenerate time
     that drops a needed dim *)
  let op = Ir.Kernels.gemm ~ni:2 ~nj:2 ~nk:4 in
  let bad =
    Df.Dataflow.make ~name:"bad"
      ~space:Isl.Aff.[ Var "i"; Var "j" ]
      ~time:Isl.Aff.[ Var "i" ] (* k unmapped: 4 instances per stamp *)
  in
  match Df.Dataflow.conflict_counts op bad with
  | Some (pairs, stamps) ->
      check_int "instances" 16 pairs;
      check_bool "fewer stamps than instances" true (stamps < pairs)
  | None -> Alcotest.fail "expected a PE conflict"

let test_validate_rank () =
  let op = Ir.Kernels.gemm ~ni:2 ~nj:2 ~nk:4 in
  ignore op;
  match Df.Dataflow.rank_violation fig3_df (Arch.Pe_array.d1 4) with
  | Some (r, ar) ->
      check_int "stamp rank" 2 r;
      check_int "array rank" 1 ar
  | None -> Alcotest.fail "expected a rank mismatch"

let test_unknown_iterator () =
  let op = Ir.Kernels.gemm ~ni:2 ~nj:2 ~nk:4 in
  let bad =
    Df.Dataflow.make ~name:"bad" ~space:[ Isl.Aff.Var "zz" ]
      ~time:[ Isl.Aff.Var "i" ]
  in
  check_bool "unknown iterator" true
    (match Df.Dataflow.theta op bad with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_data_assignment () =
  let op = Ir.Kernels.gemm ~ni:2 ~nj:2 ~nk:4 in
  let a = Df.Dataflow.data_assignment op fig3_df "Y" in
  check_int "pairs" 16 (Isl.Map.card a);
  (* Y is stationary: the assignment restricted to one PE has one element *)
  let at_pe = Isl.Map.fix_input ~dim:0 0 (Isl.Map.fix_input ~dim:1 1 a) in
  check_int "one Y element per PE" 1 (Isl.Set.card (Isl.Map.range at_pe))

let test_time_bounds () =
  let op = Ir.Kernels.gemm ~ni:16 ~nj:16 ~nk:4 in
  let df = Df.Zoo.gemm_ij_p_ijk_t () in
  let b = Df.Dataflow.time_bounds op df in
  check_int "time dims" 3 (List.length b);
  let lo, hi = List.nth b 2 in
  check_int "inner lo" 0 lo;
  check_int "inner hi" (7 + 7 + 3) hi

(* --- zoo validity: every Table III dataflow is valid on its natural
   array and problem sizes --- *)

let validate_all name pe op dfs =
  List.iter
    (fun df ->
      match Df.Dataflow.first_violation op df pe with
      | None -> ()
      | Some msg ->
          Alcotest.fail
            (Printf.sprintf "%s / %s: %s" name df.Df.Dataflow.name msg))
    dfs

let test_zoo_gemm () =
  let op = Ir.Kernels.gemm ~ni:16 ~nj:16 ~nk:16 in
  validate_all "gemm2d" (Arch.Pe_array.d2 8 8) op (Df.Zoo.gemm_2d ());
  validate_all "gemm1d" (Arch.Pe_array.d1 64) op (Df.Zoo.gemm_1d ())

let test_zoo_conv () =
  let op = Ir.Kernels.conv2d ~nk:16 ~nc:16 ~nox:8 ~noy:8 ~nrx:3 ~nry:3 in
  let two_d =
    [
      Df.Zoo.conv_kc_p_oy_kcox_t ();
      Df.Zoo.conv_kox_p_oy_koxc_t ();
      Df.Zoo.conv_kc_p_c_kox_t ();
      Df.Zoo.conv_shidiannao ();
      Df.Zoo.conv_nvdla ();
    ]
  in
  validate_all "conv2d" (Arch.Pe_array.d2 8 8) op two_d;
  validate_all "conv1d"
    (Arch.Pe_array.d1 64)
    op
    [ Df.Zoo.conv_k_p_ox_oy_t (); Df.Zoo.conv_c_p_oy_ox_t () ]

let test_zoo_eyeriss () =
  (* row-stationary on 12 x 14: needs oy <= 13, ry = 3, c % 4 slices *)
  let op = Ir.Kernels.conv2d ~nk:16 ~nc:16 ~nox:13 ~noy:13 ~nrx:3 ~nry:3 in
  validate_all "eyeriss"
    (Arch.Pe_array.d2 12 14)
    op
    [ Df.Zoo.conv_eyeriss_rs () ]

let test_zoo_mttkrp () =
  let op = Ir.Kernels.mttkrp ~ni:8 ~nj:8 ~nk:8 ~nl:8 in
  validate_all "mttkrp" (Arch.Pe_array.d2 8 8) op (Df.Zoo.mttkrp_all ())

let test_zoo_jacobi () =
  let op = Ir.Kernels.jacobi2d ~n:18 in
  validate_all "jacobi 2d" (Arch.Pe_array.d2 8 8) op
    [ Df.Zoo.jacobi_ij_p_ij_t () ];
  validate_all "jacobi 1d" (Arch.Pe_array.d1 64) op
    [ Df.Zoo.jacobi_i_p_ij_t () ]

let test_zoo_mmc () =
  let op = Ir.Kernels.mmc ~ni:8 ~nj:8 ~nk:8 ~nl:8 in
  validate_all "mmc" (Arch.Pe_array.d2 8 8) op (Df.Zoo.mmc_all ())

(* --- spacetime channels --- *)

let test_channels_shape () =
  let spec = Arch.Repository.tpu_like ~n:2 () in
  let op = Ir.Kernels.gemm ~ni:2 ~nj:2 ~nk:4 in
  let chans = Df.Spacetime.channels spec op fig3_df in
  check_int "two channels" 2 (List.length chans);
  let kinds = List.map (fun c -> c.Df.Spacetime.kind) chans in
  check_bool "temporal present" true (List.mem `Temporal kinds);
  check_bool "spatial present" true (List.mem `Spatial kinds)

let test_temporal_channel_semantics () =
  let op = Ir.Kernels.gemm ~ni:2 ~nj:2 ~nk:4 in
  let pe = Arch.Pe_array.d2 2 2 in
  let c = Df.Spacetime.temporal op fig3_df pe in
  (* same PE, t -> t+1 *)
  check_bool "succ" true
    (Isl.Map.mem c.Df.Spacetime.m ~src:[| 0; 0; 2 |] ~dst:[| 0; 0; 3 |]);
  check_bool "not same t" false
    (Isl.Map.mem c.Df.Spacetime.m ~src:[| 0; 0; 2 |] ~dst:[| 0; 0; 2 |]);
  check_bool "not other PE" false
    (Isl.Map.mem c.Df.Spacetime.m ~src:[| 0; 0; 2 |] ~dst:[| 0; 1; 3 |])

let test_lex_adjacency_wraps () =
  (* two time dims with bounds (0..1, 0..2): lex successor of (0,2) is
     (1,0) *)
  let op =
    Ir.Tensor_op.make
      ~iters:[ ("a", 0, 1); ("b", 0, 2) ]
      ~accesses:
        [
          {
            Ir.Tensor_op.tensor = "Y";
            subscripts = [ Isl.Aff.Var "a"; Isl.Aff.Var "b" ];
            direction = Ir.Tensor_op.Write;
          };
        ]
      ()
  in
  let df =
    Df.Dataflow.make ~name:"seq" ~space:[ Isl.Aff.Int 0 ]
      ~time:Isl.Aff.[ Var "a"; Var "b" ]
  in
  let pe = Arch.Pe_array.d1 1 in
  let inner = Df.Spacetime.temporal ~adjacency:`Inner_step op df pe in
  let lex = Df.Spacetime.temporal ~adjacency:`Lex_step op df pe in
  check_bool "inner: no wrap" false
    (Isl.Map.mem inner.Df.Spacetime.m ~src:[| 0; 0; 2 |] ~dst:[| 0; 1; 0 |]);
  check_bool "lex: wrap" true
    (Isl.Map.mem lex.Df.Spacetime.m ~src:[| 0; 0; 2 |] ~dst:[| 0; 1; 0 |]);
  check_bool "lex: plain step too" true
    (Isl.Map.mem lex.Df.Spacetime.m ~src:[| 0; 0; 1 |] ~dst:[| 0; 0; 2 |]);
  check_bool "lex: no skip" false
    (Isl.Map.mem lex.Df.Spacetime.m ~src:[| 0; 0; 0 |] ~dst:[| 0; 1; 1 |])

let test_lex_lt_filter () =
  let pe = Arch.Pe_array.d1 4 in
  let full =
    Arch.Interconnect.relation Arch.Interconnect.Reduction_tree pe
  in
  let filtered = Df.Spacetime.reuse_pe_relation pe Arch.Interconnect.Reduction_tree in
  check_int "full" 12 (Isl.Map.card full);
  check_int "half" 6 (Isl.Map.card filtered);
  check_bool "increasing kept" true
    (Isl.Map.mem filtered ~src:[| 1 |] ~dst:[| 3 |]);
  check_bool "decreasing dropped" false
    (Isl.Map.mem filtered ~src:[| 3 |] ~dst:[| 1 |])

let () =
  Alcotest.run "dataflow"
    [
      ( "theta",
        [
          Alcotest.test_case "fig3" `Quick test_theta_fig3;
          Alcotest.test_case "data assignment" `Quick test_data_assignment;
          Alcotest.test_case "time bounds" `Quick test_time_bounds;
        ] );
      ( "validation",
        [
          Alcotest.test_case "ok" `Quick test_validate_ok;
          Alcotest.test_case "out of array" `Quick test_validate_out_of_array;
          Alcotest.test_case "pe conflict" `Quick test_validate_conflict;
          Alcotest.test_case "rank mismatch" `Quick test_validate_rank;
          Alcotest.test_case "unknown iterator" `Quick test_unknown_iterator;
        ] );
      ( "zoo (Table III)",
        [
          Alcotest.test_case "gemm" `Quick test_zoo_gemm;
          Alcotest.test_case "conv" `Quick test_zoo_conv;
          Alcotest.test_case "eyeriss rs" `Quick test_zoo_eyeriss;
          Alcotest.test_case "mttkrp" `Quick test_zoo_mttkrp;
          Alcotest.test_case "jacobi" `Quick test_zoo_jacobi;
          Alcotest.test_case "mmc" `Quick test_zoo_mmc;
        ] );
      ( "spacetime",
        [
          Alcotest.test_case "channels" `Quick test_channels_shape;
          Alcotest.test_case "temporal semantics" `Quick
            test_temporal_channel_semantics;
          Alcotest.test_case "lex adjacency" `Quick test_lex_adjacency_wraps;
          Alcotest.test_case "interval-0 lex filter" `Quick test_lex_lt_filter;
        ] );
    ]
