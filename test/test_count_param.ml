(* Parametric counting: [Count.count_bset_param] must return a
   quasi-polynomial that evaluates, at every in-range parameter
   assignment, to exactly what the concrete engine counts on the set
   with the parameters pinned.  Shapes cover boxes, triangles,
   floor-valued counts, unions (overlapping and disjoint), the
   resisting cases that must return [None], and a randomized
   differential sweep. *)

module Isl = Tenet_isl
module Bset = Isl.Bset
module Count = Isl.Count
module Qpoly = Isl.Qpoly

let rand_int st lo hi = lo + Random.State.int st (hi - lo + 1)

(* Constraint helpers over a fixed variable count. *)
let ge nvars terms k =
  let a = Array.make nvars 0 in
  List.iter (fun (v, c) -> a.(v) <- a.(v) + c) terms;
  { Bset.a; k; eq = false }

let bset nvis cons = Bset.add_cons (Bset.universe nvis) cons

(* Pin the leading [n] dims of [b] to [vals] and count concretely. *)
let concrete_at b vals =
  let fixed = ref b in
  Array.iteri (fun p v -> fixed := Bset.fix !fixed ~dim:p v) vals;
  Count.count_bset !fixed

let check_template ?assume ~n_params b qp ~at =
  List.iter
    (fun vals ->
      let vals = Array.of_list vals in
      let expect = concrete_at b vals in
      let got = Qpoly.eval (fun p -> vals.(p)) qp in
      Alcotest.(check int)
        (Printf.sprintf "instantiation at (%s)"
           (String.concat ","
              (Array.to_list (Array.map string_of_int vals))))
        expect got)
    at;
  ignore assume;
  ignore n_params

(* --- fixed shapes --------------------------------------------------- *)

let test_square () =
  (* (p, x, y) with 0 <= x,y <= p-1: count = p^2 *)
  let b =
    bset 3
      [
        ge 3 [ (1, 1) ] 0;
        ge 3 [ (0, 1); (1, -1) ] (-1);
        ge 3 [ (2, 1) ] 0;
        ge 3 [ (0, 1); (2, -1) ] (-1);
      ]
  in
  match Count.count_bset_param ~n_params:1 b with
  | None -> Alcotest.fail "square template resisted"
  | Some qp ->
      check_template ~n_params:1 b qp
        ~at:[ [ 1 ]; [ 2 ]; [ 7 ]; [ 64 ]; [ 4096 ] ]

let test_triangle () =
  (* (p, x, y) with 0 <= x <= y <= p-1: count = p(p+1)/2 *)
  let b =
    bset 3
      [
        ge 3 [ (1, 1) ] 0;
        ge 3 [ (2, 1); (1, -1) ] 0;
        ge 3 [ (0, 1); (2, -1) ] (-1);
      ]
  in
  match Count.count_bset_param ~n_params:1 b with
  | None -> Alcotest.fail "triangle template resisted"
  | Some qp ->
      check_template ~n_params:1 b qp ~at:[ [ 1 ]; [ 3 ]; [ 10 ]; [ 100 ] ];
      Alcotest.(check int) "closed form at 8" 36 (Qpoly.eval (fun _ -> 8) qp)

let test_floor_count () =
  (* (p, e) with e >= 0 and 4e <= p-1: count = floor((p-1)/4) + 1, a
     genuine quasi-polynomial (floor atom in p). *)
  let b = bset 2 [ ge 2 [ (1, 1) ] 0; ge 2 [ (0, 1); (1, -4) ] (-1) ] in
  match Count.count_bset_param ~n_params:1 b with
  | None -> Alcotest.fail "floor template resisted"
  | Some qp ->
      check_template ~n_params:1 b qp
        ~at:[ [ 1 ]; [ 2 ]; [ 4 ]; [ 5 ]; [ 9 ]; [ 63 ]; [ 64 ]; [ 65 ] ]

let test_two_params () =
  (* (n, m, x, y) with 0 <= x <= n-1, 0 <= y <= m-1: count = n*m *)
  let b =
    bset 4
      [
        ge 4 [ (2, 1) ] 0;
        ge 4 [ (0, 1); (2, -1) ] (-1);
        ge 4 [ (3, 1) ] 0;
        ge 4 [ (1, 1); (3, -1) ] (-1);
      ]
  in
  match Count.count_bset_param ~n_params:2 b with
  | None -> Alcotest.fail "two-param template resisted"
  | Some qp ->
      check_template ~n_params:2 b qp
        ~at:[ [ 1; 1 ]; [ 3; 5 ]; [ 17; 2 ]; [ 64; 64 ] ]

let test_div_existential () =
  (* (p, x) with 0 <= x <= p-1 and an existential e = floor(x/4): the
     div witness is unique, so the count stays p. *)
  let nvars = 3 in
  let num = Array.make nvars 0 in
  num.(1) <- 1;
  let b =
    {
      Bset.nvis = 2;
      defs = [| Some { Bset.num; dk = 0; den = 4 } |];
      cons = [ ge nvars [ (1, 1) ] 0; ge nvars [ (0, 1); (1, -1) ] (-1) ];
    }
  in
  match Count.count_bset_param ~n_params:1 b with
  | None -> Alcotest.fail "div-existential template resisted"
  | Some qp ->
      check_template ~n_params:1 b qp ~at:[ [ 1 ]; [ 5 ]; [ 16 ]; [ 33 ] ]

let test_empty () =
  (* x <= -1 and x >= 0: empty for every p — the template is 0. *)
  let b =
    bset 2
      [ ge 2 [ (1, 1) ] 0; ge 2 [ (1, -1) ] (-1); ge 2 [ (0, 1); (1, -1) ] 0 ]
  in
  match Count.count_bset_param ~n_params:1 b with
  | None -> Alcotest.fail "empty set should template to zero"
  | Some qp ->
      Alcotest.(check (option int)) "zero template" (Some 0) (Qpoly.is_const qp)

let test_union_overlap () =
  (* Two overlapping strips of the (p, x, y) square; inclusion–exclusion
     must count the overlap once. A = x in [0,5], B = x in [3,9], both
     with 0 <= y <= p-1, over x <= p-1 as well — keep every disjunct
     p-bounded so the union is parametric. *)
  let strip lo hi =
    bset 3
      [
        ge 3 [ (1, 1) ] (-lo);
        ge 3 [ (1, -1) ] hi;
        ge 3 [ (2, 1) ] 0;
        ge 3 [ (0, 1); (2, -1) ] (-1);
      ]
  in
  let bs = [ strip 0 5; strip 3 9 ] in
  match Count.count_union_param ~n_params:1 bs with
  | None -> Alcotest.fail "overlapping union resisted"
  | Some qp ->
      List.iter
        (fun p ->
          let expect =
            (* 10 distinct x values, p y values each *)
            10 * p
          in
          Alcotest.(check int)
            (Printf.sprintf "union at p=%d" p)
            expect
            (Qpoly.eval (fun _ -> p) qp))
        [ 1; 4; 100 ]

let test_union_disjoint () =
  (* Disjoint strips: the intersection term is empty, which must
     template to zero rather than force a fallback. *)
  let strip lo hi =
    bset 2
      [
        ge 2 [ (1, 1) ] (-lo);
        ge 2 [ (1, -1) ] hi;
        ge 2 [ (0, 1) ] 0 (* p mentioned so arity checks stay honest *);
      ]
  in
  let bs = [ strip 0 3; strip 10 13 ] in
  match Count.count_union_param ~n_params:1 bs with
  | None -> Alcotest.fail "disjoint union resisted"
  | Some qp ->
      Alcotest.(check (option int)) "constant 8" (Some 8) (Qpoly.is_const qp)

let test_resists () =
  (* min(p, 10) is not a quasi-polynomial in p: the planner must refuse
     (two incomparable upper bounds on x). *)
  let b =
    bset 2
      [
        ge 2 [ (1, 1) ] 0;
        ge 2 [ (0, 1); (1, -1) ] (-1);
        ge 2 [ (1, -1) ] 9;
      ]
  in
  (match Count.count_bset_param ~n_params:1 b with
  | None -> ()
  | Some qp ->
      (* accepted only if genuinely exact everywhere *)
      check_template ~n_params:1 b qp ~at:[ [ 1 ]; [ 9 ]; [ 10 ]; [ 11 ]; [ 50 ] ]);
  (* a 5-disjunct union exceeds the inclusion–exclusion bound *)
  let one = bset 1 [ ge 1 [ (0, 1) ] 0 ] in
  Alcotest.(check bool)
    "5-disjunct union falls back" true
    (Count.count_union_param ~n_params:0 [ one; one; one; one; one ] = None)

let test_assume_range () =
  (* The template is only certified inside [assume]; a range starting
     at 5 must still instantiate exactly there. *)
  let b =
    bset 2 [ ge 2 [ (1, 1) ] (-3); ge 2 [ (0, 1); (1, -1) ] 2 ]
    (* 3 <= x <= p+2: count = p *)
  in
  match Count.count_bset_param ~n_params:1 ~assume:[| (5, 200) |] b with
  | None -> Alcotest.fail "assume-range template resisted"
  | Some qp ->
      List.iter
        (fun p ->
          Alcotest.(check int)
            (Printf.sprintf "at p=%d" p)
            p
            (Qpoly.eval (fun _ -> p) qp))
        [ 5; 17; 200 ]

(* --- randomized differential sweep ---------------------------------- *)

let test_random_boxes () =
  let st = Random.State.make [| 0x7e4e7 |] in
  let hits = ref 0 in
  for _ = 1 to 200 do
    let ndims = rand_int st 1 3 in
    let nvis = 1 + ndims in
    let cons = ref [] in
    for i = 1 to ndims do
      let lo = rand_int st (-2) 2 in
      cons := ge nvis [ (i, 1) ] (-lo) :: !cons;
      (* upper bound: constant, parametric, or coupled to an earlier dim *)
      (match rand_int st 0 2 with
      | 0 -> cons := ge nvis [ (i, -1) ] (lo + rand_int st 0 6) :: !cons
      | 1 ->
          (* x_i <= p + c with c >= lo so width >= 1 at p = 1 *)
          cons :=
            ge nvis [ (0, 1); (i, -1) ] (lo + rand_int st 0 3) :: !cons
      | _ ->
          if i > 1 then
            (* x_i <= x_{i-1} + c, plus a parametric safety net so the
               dim stays p-bounded *)
            cons :=
              ge nvis [ (i - 1, 1); (i, -1) ] (rand_int st 0 4)
              :: ge nvis [ (0, 1); (i, -1) ] (lo + rand_int st 0 3)
              :: !cons
          else
            cons :=
              ge nvis [ (0, 1); (i, -1) ] (lo + rand_int st 0 3) :: !cons);
      ()
    done;
    let b = bset nvis !cons in
    match Count.count_bset_param ~n_params:1 ~assume:[| (1, 512) |] b with
    | None -> ()
    | Some qp ->
        incr hits;
        List.iter
          (fun p ->
            let expect = concrete_at b [| p |] in
            let got = Qpoly.eval (fun _ -> p) qp in
            if expect <> got then
              Alcotest.failf "random box mismatch at p=%d: concrete %d, qp %d"
                p expect got)
          [ 1; 2; rand_int st 3 40; rand_int st 41 512 ]
  done;
  (* the generator is box-heavy: most shapes must hit the fast path *)
  if !hits < 100 then
    Alcotest.failf "only %d/200 random sets produced a template" !hits

let test_verify_mode () =
  (* The sanitizer path itself: with verification forced on, building a
     correct template must pass its internal spot checks silently. *)
  Count.set_verify_mode (Some true);
  Fun.protect
    ~finally:(fun () -> Count.set_verify_mode None)
    (fun () ->
      let b =
        bset 3
          [
            ge 3 [ (1, 1) ] 0;
            ge 3 [ (0, 1); (1, -1) ] (-1);
            ge 3 [ (2, 1) ] 0;
            ge 3 [ (1, 1); (2, -1) ] 0;
          ]
      in
      match Count.count_bset_param ~n_params:1 b with
      | None -> Alcotest.fail "verified template resisted"
      | Some qp ->
          check_template ~n_params:1 b qp ~at:[ [ 1 ]; [ 6 ]; [ 20 ] ])

let () =
  Alcotest.run "count_param"
    [
      ( "templates",
        [
          Alcotest.test_case "square" `Quick test_square;
          Alcotest.test_case "triangle" `Quick test_triangle;
          Alcotest.test_case "floor count" `Quick test_floor_count;
          Alcotest.test_case "two params" `Quick test_two_params;
          Alcotest.test_case "div existential" `Quick test_div_existential;
          Alcotest.test_case "empty set" `Quick test_empty;
          Alcotest.test_case "union overlap" `Quick test_union_overlap;
          Alcotest.test_case "union disjoint" `Quick test_union_disjoint;
          Alcotest.test_case "resisting shapes" `Quick test_resists;
          Alcotest.test_case "assume range" `Quick test_assume_range;
          Alcotest.test_case "random boxes" `Quick test_random_boxes;
          Alcotest.test_case "verify mode" `Quick test_verify_mode;
        ] );
    ]
