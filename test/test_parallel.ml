(* The Domain work pool ({!Tenet_util.Parallel}) and the determinism
   guarantee that rides on it: results are written at their input index
   and the DSE sort is stable, so any job count produces bit-identical
   output.  These tests run the pool at jobs=4 even on a single-core
   host — correctness must not depend on the machine shape. *)

module Parallel = Tenet_util.Parallel
module Ir = Tenet_ir
module Arch = Tenet_arch
module M = Tenet_model
module Dse = Tenet_dse.Dse

let with_jobs n f =
  Parallel.set_jobs n;
  Fun.protect ~finally:(fun () -> Parallel.set_jobs 1) f

(* --- parse_jobs ----------------------------------------------------- *)

let test_parse_jobs () =
  Alcotest.(check int) "plain" 4 (Parallel.parse_jobs ~what:"t" "4");
  Alcotest.(check int) "trimmed" 2 (Parallel.parse_jobs ~what:"t" " 2 ");
  let rejects s =
    match Parallel.parse_jobs ~what:"t" s with
    | n -> Alcotest.failf "parse_jobs %S: expected failure, got %d" s n
    | exception Failure _ -> ()
  in
  rejects "0";
  rejects "-3";
  rejects "abc";
  rejects "";
  rejects "2.5"

let test_set_jobs_rejects () =
  match Parallel.set_jobs 0 with
  | () -> Alcotest.fail "set_jobs 0 accepted"
  | exception Invalid_argument _ -> ()

(* --- map semantics -------------------------------------------------- *)

let test_map_order () =
  with_jobs 4 (fun () ->
      let input = List.init 257 (fun i -> i) in
      let expect = List.map (fun i -> (i * i) + 1) input in
      Alcotest.(check (list int))
        "map == List.map" expect
        (Parallel.map (fun i -> (i * i) + 1) input);
      let arr = Array.init 100 (fun i -> 100 - i) in
      Alcotest.(check (array int))
        "map_array == Array.map" (Array.map succ arr)
        (Parallel.map_array succ arr);
      Alcotest.(check (array int))
        "init == Array.init" (Array.init 64 (fun i -> i * 3))
        (Parallel.init 64 (fun i -> i * 3)))

let test_map_small_and_empty () =
  with_jobs 4 (fun () ->
      Alcotest.(check (list int)) "empty" [] (Parallel.map succ []);
      Alcotest.(check (list int)) "singleton" [ 8 ] (Parallel.map succ [ 7 ]))

exception Boom of int

let test_map_exception () =
  with_jobs 4 (fun () ->
      match
        Parallel.map
          (fun i -> if i mod 10 = 7 then raise (Boom i) else i)
          (List.init 50 (fun i -> i))
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i ->
          (* smallest failing index, regardless of scheduling *)
          Alcotest.(check int) "first failure wins" 7 i)

let test_map_chunked () =
  with_jobs 4 (fun () ->
      let input = List.init 100 (fun i -> i) in
      let expect = List.map succ input in
      (* explicit chunking must not change results or order, whatever
         the chunk size's relation to the input length *)
      List.iter
        (fun chunk ->
          Alcotest.(check (list int))
            (Printf.sprintf "chunk=%d" chunk)
            expect
            (Parallel.map ~chunk succ input))
        [ 1; 2; 7; 100; 1000 ];
      Alcotest.(check (array int))
        "map_array chunked" (Array.init 33 succ)
        (Parallel.map_array ~chunk:5 succ (Array.init 33 Fun.id));
      Alcotest.(check (array int))
        "init chunked"
        (Array.init 65 (fun i -> i * 2))
        (Parallel.init ~chunk:9 65 (fun i -> i * 2));
      match Parallel.map_array ~chunk:0 succ [| 1 |] with
      | _ -> Alcotest.fail "chunk=0 accepted"
      | exception Invalid_argument _ -> ())

let test_nested_map () =
  with_jobs 4 (fun () ->
      let got =
        Parallel.map
          (fun i -> List.fold_left ( + ) 0 (Parallel.map (( * ) i) [ 1; 2; 3 ]))
          (List.init 20 (fun i -> i))
      in
      Alcotest.(check (list int))
        "nested maps stay correct"
        (List.init 20 (fun i -> 6 * i))
        got)

(* --- determinism of parallel counting and DSE ----------------------- *)

let test_dse_deterministic () =
  let op = Ir.Kernels.conv2d ~nk:4 ~nc:4 ~nox:6 ~noy:6 ~nrx:3 ~nry:3 in
  let spec = Arch.Repository.tpu_like ~n:4 ~bandwidth:4 () in
  let cands = Dse.candidates_2d op ~p:4 in
  let digest outcomes =
    List.map
      (fun (o : Dse.outcome) ->
        ( o.Dse.dataflow.Tenet_dataflow.Dataflow.name,
          o.Dse.metrics.M.Metrics.latency,
          o.Dse.metrics.M.Metrics.energy,
          o.Dse.metrics.M.Metrics.sbw,
          o.Dse.expressible ))
      outcomes
  in
  let seq =
    digest (Dse.evaluate_all ~objective:Dse.Latency spec op cands)
  in
  let par =
    with_jobs 4 (fun () ->
        digest (Dse.evaluate_all ~objective:Dse.Latency spec op cands))
  in
  if seq <> par then Alcotest.fail "DSE outcomes differ between jobs=1 and jobs=4";
  Alcotest.(check bool) "nonempty" true (seq <> [])

let test_count_union_parallel_matches () =
  (* the per-disjunct union counting path must not depend on jobs *)
  let mk lo hi =
    let a1 = [| 1; 0 |] and a2 = [| -1; 0 |] in
    let b1 = [| 0; 1 |] and b2 = [| 0; -1 |] in
    {
      Tenet_isl.Bset.nvis = 2;
      defs = [||];
      cons =
        [
          { Tenet_isl.Bset.a = a1; k = -lo; eq = false };
          { Tenet_isl.Bset.a = a2; k = hi; eq = false };
          { Tenet_isl.Bset.a = b1; k = -lo; eq = false };
          { Tenet_isl.Bset.a = b2; k = hi; eq = false };
        ];
    }
  in
  let bs = [ mk 0 5; mk 3 9; mk (-2) 1; mk 7 12 ] in
  let seq = Tenet_isl.Count.count_union bs in
  Tenet_isl.Count.cache_clear ();
  let par = with_jobs 4 (fun () -> Tenet_isl.Count.count_union bs) in
  Alcotest.(check int) "union count independent of jobs" seq par

let () =
  Alcotest.run "parallel"
    [
      ( "api",
        [
          Alcotest.test_case "parse_jobs strictness" `Quick test_parse_jobs;
          Alcotest.test_case "set_jobs rejects < 1" `Quick
            test_set_jobs_rejects;
        ] );
      ( "map",
        [
          Alcotest.test_case "order preservation" `Quick test_map_order;
          Alcotest.test_case "empty & singleton" `Quick test_map_small_and_empty;
          Alcotest.test_case "explicit chunking" `Quick test_map_chunked;
          Alcotest.test_case "exception propagation" `Quick test_map_exception;
          Alcotest.test_case "nested maps" `Quick test_nested_map;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "dse jobs=4 == jobs=1" `Quick
            test_dse_deterministic;
          Alcotest.test_case "count_union jobs=4 == jobs=1" `Quick
            test_count_union_parallel_matches;
        ] );
    ]
