(* Tests for the telemetry library (lib/obs): span nesting and ordering,
   counter aggregation, disabled-mode no-op behavior, deterministic JSON
   shape under an injected clock, and JSON round-trips for the CLI's
   machine-readable outputs.  No wall-clock values are asserted: every
   timed test installs a fake clock that advances 1s per read. *)

module Obs = Tenet.Obs
module Json = Tenet.Obs.Json
module Ir = Tenet.Ir
module Arch = Tenet.Arch
module Df = Tenet.Dataflow
module M = Tenet.Model
module Dse = Tenet.Dse.Dse

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* Each read of the fake clock advances time by exactly 1s. *)
let install_fake_clock () =
  let t = ref 0. in
  Obs.set_clock (fun () ->
      let v = !t in
      t := v +. 1.;
      v)

let fresh () =
  Obs.disable ();
  install_fake_clock ();
  Obs.reset ();
  Obs.enable ()

let teardown () = Obs.disable ()

(* --- spans --- *)

let test_span_nesting () =
  fresh ();
  let r =
    Obs.with_span "outer" (fun () ->
        Obs.with_span ~args:[ ("k", "v") ] "inner" (fun () -> 42))
  in
  check_int "with_span returns the thunk's value" 42 r;
  (match Obs.spans () with
  | [ inner; outer ] ->
      check_string "inner completes first" "inner" inner.Obs.sp_name;
      check_string "outer completes last" "outer" outer.Obs.sp_name;
      check_int "inner depth" 1 inner.Obs.sp_depth;
      check_int "outer depth" 0 outer.Obs.sp_depth;
      check_int "inner seq" 0 inner.Obs.sp_seq;
      check_int "outer seq" 1 outer.Obs.sp_seq;
      check_bool "inner starts after outer" true
        (inner.Obs.sp_start > outer.Obs.sp_start);
      check_bool "inner nests inside outer" true
        (inner.Obs.sp_start +. inner.Obs.sp_dur
        <= outer.Obs.sp_start +. outer.Obs.sp_dur);
      check_bool "inner args kept" true (inner.Obs.sp_args = [ ("k", "v") ])
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l));
  teardown ()

let test_span_exception_safety () =
  fresh ();
  (try
     Obs.with_span "outer" (fun () ->
         Obs.with_span "boom" (fun () -> failwith "boom"))
   with Failure _ -> ());
  check_int "both spans recorded despite the exception" 2
    (List.length (Obs.spans ()));
  (* depth restored: a new span opens at depth 0 again *)
  Obs.with_span "after" (fun () -> ());
  (match List.rev (Obs.spans ()) with
  | after :: _ -> check_int "depth restored after exception" 0 after.Obs.sp_depth
  | [] -> Alcotest.fail "no spans");
  teardown ()

(* --- counters & histograms --- *)

let test_counter_aggregation () =
  fresh ();
  let c1 = Obs.counter "test.c" in
  let c2 = Obs.counter "test.c" in
  check_bool "same name, same cell" true (c1 == c2);
  Obs.incr c1;
  Obs.add c2 4;
  Obs.count ~by:5 "test.c";
  check_int "all bumps aggregate" 10 (Obs.value c1);
  Obs.count "test.other";
  let cs = List.filter (fun (n, _) -> n = "test.c" || n = "test.other")
      (Obs.counters ())
  in
  check_bool "counters listed sorted by name" true
    (List.map fst cs = [ "test.c"; "test.other" ]);
  check_bool "values correct" true (List.map snd cs = [ 10; 1 ]);
  Obs.reset ();
  check_int "reset zeroes values" 0 (Obs.value c1);
  teardown ()

let test_histograms () =
  fresh ();
  Obs.observe "test.h" 2.;
  Obs.observe "test.h" 4.;
  Obs.observe "test.h" 6.;
  (match Obs.histograms () with
  | [ h ] ->
      check_int "count" 3 h.Obs.h_count;
      check_bool "sum" true (h.Obs.h_sum = 12.);
      check_bool "min" true (h.Obs.h_min = 2.);
      check_bool "max" true (h.Obs.h_max = 6.)
  | l -> Alcotest.failf "expected 1 histogram, got %d" (List.length l));
  teardown ()

let test_disabled_noop () =
  Obs.disable ();
  install_fake_clock ();
  Obs.reset ();
  (* reset leaves telemetry disabled; nothing below may record *)
  let c = Obs.counter "test.disabled" in
  Obs.incr c;
  Obs.add c 100;
  Obs.count ~by:7 "test.disabled";
  Obs.observe "test.disabled.h" 1.;
  let calls = ref 0 in
  let r =
    Obs.with_span "test.disabled.span" (fun () ->
        incr calls;
        "ok")
  in
  check_string "thunk still runs and returns" "ok" r;
  check_int "thunk runs exactly once" 1 !calls;
  check_int "counter untouched" 0 (Obs.value c);
  check_int "no spans recorded" 0 (List.length (Obs.spans ()));
  check_int "no histograms recorded" 0 (List.length (Obs.histograms ()))

(* --- JSON exporters --- *)

let test_trace_shape () =
  fresh ();
  Obs.with_span "a" (fun () -> ());
  Obs.count ~by:3 "test.trace.c";
  let j = Obs.chrome_trace () in
  (* the whole document parses back identically: valid JSON *)
  let s = Json.to_string j in
  check_bool "trace round-trips through the parser" true (Json.parse s = j);
  let events = Option.get (Json.to_list (Option.get (Json.member "traceEvents" j))) in
  check_int "one X event + one C event" 2 (List.length events);
  let x = List.nth events 0 and c = List.nth events 1 in
  check_bool "X event" true (Json.member "ph" x = Some (Json.String "X"));
  check_bool "X named" true (Json.member "name" x = Some (Json.String "a"));
  (* fake clock: span opens at 1s after epoch, lasts 1s -> microseconds *)
  check_bool "deterministic ts" true
    (Json.member "ts" x = Some (Json.Float 1_000_000.));
  check_bool "deterministic dur" true
    (Json.member "dur" x = Some (Json.Float 1_000_000.));
  check_bool "C event carries the counter" true
    (Json.member "args" c = Some (Json.Obj [ ("value", Json.Int 3) ]));
  teardown ()

let test_stats_shape () =
  fresh ();
  Obs.with_span "a" (fun () -> Obs.with_span "b" (fun () -> ()));
  Obs.count ~by:2 "test.stats.c";
  let j = Obs.stats () in
  let counters = Option.get (Json.member "counters" j) in
  check_bool "counter exported" true
    (Json.member "test.stats.c" counters = Some (Json.Int 2));
  let spans = Option.get (Json.member "spans" j) in
  (match Json.member "a" spans with
  | Some sa ->
      check_bool "span call count" true (Json.member "calls" sa = Some (Json.Int 1));
      (* a wraps b; fake clock gives it 3 ticks *)
      check_bool "span total deterministic" true
        (Json.member "total_s" sa = Some (Json.Float 3.))
  | None -> Alcotest.fail "span 'a' missing from stats");
  check_bool "stats round-trip" true
    (Json.parse (Json.to_string ~pretty:true j) = j);
  teardown ()

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.String "a \"quoted\"\n\ttab\\slash");
        ("i", Json.Int (-42));
        ("f", Json.Float 0.5);
        ("whole", Json.Float 3.0);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.List []; Json.Obj [] ]);
      ]
  in
  check_bool "compact round-trip" true (Json.parse (Json.to_string v) = v);
  check_bool "pretty round-trip" true
    (Json.parse (Json.to_string ~pretty:true v) = v);
  check_bool "non-finite floats print as null" true
    (Json.to_string (Json.Float infinity) = "null");
  check_bool "unicode escape" true
    (Json.parse {|"a\u0041"|} = Json.String "aA")

let test_metrics_json_roundtrip () =
  (* the CLI --json path: metrics serialize to JSON that parses back and
     re-serializes identically (stable machine-readable output) *)
  let op = Ir.Kernels.gemm ~ni:4 ~nj:4 ~nk:4 in
  let spec = Arch.Repository.tpu_like ~n:2 ~bandwidth:4 () in
  let df = Df.Zoo.gemm_ij_p_ijk_t ~p:2 () in
  let m = M.Concrete.analyze spec op df in
  let j = M.Metrics.to_json m in
  let s = Json.to_string ~pretty:true j in
  let reparsed = Json.parse s in
  check_bool "parse(print(j)) = j" true (reparsed = j);
  check_string "print is stable across a round-trip" s
    (Json.to_string ~pretty:true reparsed);
  (* a few load-bearing fields *)
  check_bool "n_instances" true
    (Json.member "n_instances" j = Some (Json.Int 64));
  check_bool "per_tensor present" true
    (match Json.member "per_tensor" j with
    | Some (Json.List (_ :: _)) -> true
    | _ -> false)

(* --- end-to-end: instrumented engines actually record --- *)

let test_engines_record () =
  fresh ();
  let op = Ir.Kernels.gemm ~ni:4 ~nj:4 ~nk:4 in
  let spec = Arch.Repository.tpu_like ~n:2 ~bandwidth:4 () in
  let df = Df.Zoo.gemm_ij_p_ijk_t ~p:2 () in
  (* concrete engine: its PE-relation iteration hits the counting engine
     (drop the memoized relation so this analyze recomputes it) *)
  M.Concrete.clear_pred_cache ();
  ignore (M.Concrete.analyze spec op df);
  check_bool "count.bset_calls > 0" true
    (Obs.value (Obs.counter "count.bset_calls") > 0);
  check_int "concrete.analyses" 1 (Obs.value (Obs.counter "concrete.analyses"));
  (* relational engine: counts every volume relation *)
  ignore (M.Model.analyze ~validate:false spec op df);
  check_int "model.relational_analyses" 1
    (Obs.value (Obs.counter "model.relational_analyses"));
  check_bool "count.points_enumerated > 0" true
    (Obs.value (Obs.counter "count.points_enumerated") > 0);
  check_bool "volumes span recorded" true
    (List.exists (fun sp -> sp.Obs.sp_name = "model.volumes") (Obs.spans ()));
  (* dse: per-candidate counters *)
  let cands = Dse.candidates_2d op ~p:2 in
  ignore (Dse.evaluate_all ~objective:Dse.Latency spec op cands);
  check_int "dse.candidates_evaluated" (List.length cands)
    (Obs.value (Obs.counter "dse.candidates_evaluated"));
  teardown ()

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting & ordering" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick
            test_span_exception_safety;
        ] );
      ( "counters",
        [
          Alcotest.test_case "aggregation" `Quick test_counter_aggregation;
          Alcotest.test_case "histograms" `Quick test_histograms;
          Alcotest.test_case "disabled no-op" `Quick test_disabled_noop;
        ] );
      ( "json",
        [
          Alcotest.test_case "chrome trace shape" `Quick test_trace_shape;
          Alcotest.test_case "stats shape" `Quick test_stats_shape;
          Alcotest.test_case "value round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "metrics round-trip" `Quick
            test_metrics_json_roundtrip;
        ] );
      ( "integration",
        [ Alcotest.test_case "engines record" `Quick test_engines_record ] );
    ]
