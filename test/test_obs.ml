(* Tests for the telemetry library (lib/obs): span nesting and ordering,
   counter aggregation, disabled-mode no-op behavior, deterministic JSON
   shape under an injected clock, and JSON round-trips for the CLI's
   machine-readable outputs.  No wall-clock values are asserted: every
   timed test installs a fake clock that advances 1s per read. *)

module Obs = Tenet.Obs
module Json = Tenet.Obs.Json
module Ir = Tenet.Ir
module Arch = Tenet.Arch
module Df = Tenet.Dataflow
module M = Tenet.Model
module Dse = Tenet.Dse.Dse

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* Each read of the fake clock advances time by exactly 1s. *)
let install_fake_clock () =
  let t = ref 0. in
  Obs.set_clock (fun () ->
      let v = !t in
      t := v +. 1.;
      v)

let fresh () =
  Obs.disable ();
  install_fake_clock ();
  Obs.reset ();
  Obs.enable ()

let teardown () = Obs.disable ()

(* --- spans --- *)

let test_span_nesting () =
  fresh ();
  let r =
    Obs.with_span "outer" (fun () ->
        Obs.with_span ~args:[ ("k", "v") ] "inner" (fun () -> 42))
  in
  check_int "with_span returns the thunk's value" 42 r;
  (match Obs.spans () with
  | [ inner; outer ] ->
      check_string "inner completes first" "inner" inner.Obs.sp_name;
      check_string "outer completes last" "outer" outer.Obs.sp_name;
      check_int "inner depth" 1 inner.Obs.sp_depth;
      check_int "outer depth" 0 outer.Obs.sp_depth;
      check_int "inner seq" 0 inner.Obs.sp_seq;
      check_int "outer seq" 1 outer.Obs.sp_seq;
      check_bool "inner starts after outer" true
        (inner.Obs.sp_start > outer.Obs.sp_start);
      check_bool "inner nests inside outer" true
        (inner.Obs.sp_start +. inner.Obs.sp_dur
        <= outer.Obs.sp_start +. outer.Obs.sp_dur);
      check_bool "inner args kept" true (inner.Obs.sp_args = [ ("k", "v") ])
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l));
  teardown ()

let test_span_exception_safety () =
  fresh ();
  (try
     Obs.with_span "outer" (fun () ->
         Obs.with_span "boom" (fun () -> failwith "boom"))
   with Failure _ -> ());
  check_int "both spans recorded despite the exception" 2
    (List.length (Obs.spans ()));
  (* depth restored: a new span opens at depth 0 again *)
  Obs.with_span "after" (fun () -> ());
  (match List.rev (Obs.spans ()) with
  | after :: _ -> check_int "depth restored after exception" 0 after.Obs.sp_depth
  | [] -> Alcotest.fail "no spans");
  teardown ()

(* --- counters & histograms --- *)

let test_counter_aggregation () =
  fresh ();
  let c1 = Obs.counter "test.c" in
  let c2 = Obs.counter "test.c" in
  check_bool "same name, same cell" true (c1 == c2);
  Obs.incr c1;
  Obs.add c2 4;
  Obs.count ~by:5 "test.c";
  check_int "all bumps aggregate" 10 (Obs.value c1);
  Obs.count "test.other";
  let cs = List.filter (fun (n, _) -> n = "test.c" || n = "test.other")
      (Obs.counters ())
  in
  check_bool "counters listed sorted by name" true
    (List.map fst cs = [ "test.c"; "test.other" ]);
  check_bool "values correct" true (List.map snd cs = [ 10; 1 ]);
  Obs.reset ();
  check_int "reset zeroes values" 0 (Obs.value c1);
  teardown ()

let test_histograms () =
  fresh ();
  Obs.observe "test.h" 2.;
  Obs.observe "test.h" 4.;
  Obs.observe "test.h" 6.;
  (match Obs.histograms () with
  | [ h ] ->
      check_int "count" 3 (Obs.hist_count h);
      check_bool "sum" true (Obs.hist_sum h = 12.);
      check_bool "min" true (Obs.hist_min h = 2.);
      check_bool "max" true (Obs.hist_max h = 6.)
  | l -> Alcotest.failf "expected 1 histogram, got %d" (List.length l));
  teardown ()

let check_close msg expected actual =
  if Float.abs (expected -. actual) > 1e-9 then
    Alcotest.failf "%s: expected %g, got %g" msg expected actual

(* Known distribution 1..100: the {1,2,5} log buckets make the common
   quantiles land exactly (interpolation across a bucket of uniformly
   spread integers is exact). *)
let test_quantiles () =
  fresh ();
  let h = Obs.histogram "test.q" in
  for v = 1 to 100 do
    Obs.observe_h h (float_of_int v)
  done;
  check_int "count" 100 (Obs.hist_count h);
  check_close "p50" 50. (Obs.quantile h 0.5);
  check_close "p90" 90. (Obs.quantile h 0.9);
  check_close "p99" 99. (Obs.quantile h 0.99);
  check_close "p99.9" 99.9 (Obs.quantile h 0.999);
  check_close "p0 clamps to min" 1. (Obs.quantile h 0.);
  check_close "p100 clamps to max" 100. (Obs.quantile h 1.);
  (* single observation: every quantile is that value *)
  let h1 = Obs.histogram "test.q1" in
  Obs.observe_h h1 0.0042;
  check_close "singleton p50" 0.0042 (Obs.quantile h1 0.5);
  check_close "singleton p999" 0.0042 (Obs.quantile h1 0.999);
  check_close "empty histogram quantile" 0.
    (Obs.quantile (Obs.histogram "test.qe") 0.5);
  teardown ()

let test_snapshot_diff () =
  fresh ();
  let h = Obs.histogram "test.sw" in
  let c = Obs.counter "test.sc" in
  Obs.add c 10;
  for _ = 1 to 4 do
    Obs.observe_h h 1.0
  done;
  let s1 = Obs.Snapshot.take () in
  Obs.add c 5;
  for _ = 1 to 6 do
    Obs.observe_h h 3.0
  done;
  let s2 = Obs.Snapshot.take () in
  check_int "lifetime counter in snapshot" 15 (Obs.Snapshot.counter s2 "test.sc");
  let d = Obs.Snapshot.diff ~newer:s2 ~older:s1 in
  (* each take reads the fake clock exactly once; nothing in between does *)
  check_close "window duration" 1.0 d.Obs.Snapshot.s_duration;
  check_int "window counter delta" 5 (Obs.Snapshot.counter d "test.sc");
  check_close "window rate" 5.0 (Obs.Snapshot.rate d "test.sc");
  (match Obs.Snapshot.hist d "test.sw" with
  | None -> Alcotest.fail "windowed histogram missing"
  | Some wh ->
      check_int "window hist count" 6 wh.Obs.Snapshot.hs_count;
      check_close "window hist sum" 18. wh.Obs.Snapshot.hs_sum;
      (* all six window observations are 3.0, in the (2,5] bucket: the
         window quantile interpolates inside it, clamped to its bounds *)
      check_close "window p50 interpolates in-bucket" 3.5
        (Obs.Snapshot.quantile wh 0.5);
      check_close "window mean" 3. (Obs.Snapshot.mean wh));
  (* the JSON export round-trips *)
  let j = Obs.Snapshot.to_json d in
  check_bool "snapshot json round-trip" true
    (Json.parse (Json.to_string j) = j);
  teardown ()

let test_span_ring () =
  fresh ();
  Obs.set_span_capacity 64;
  for _ = 1 to 10_000 do
    Obs.with_span "s" (fun () -> ())
  done;
  check_int "retained spans bounded by capacity" 64
    (List.length (Obs.spans ()));
  check_int "dropped count" (10_000 - 64) (Obs.spans_dropped ());
  (match List.rev (Obs.spans ()) with
  | newest :: _ -> check_int "newest span retained" 9_999 newest.Obs.sp_seq
  | [] -> Alcotest.fail "ring empty");
  Obs.set_span_capacity 4096;
  teardown ()

let test_exemplars () =
  fresh ();
  Obs.set_exemplar_capacity 2;
  (* fast: 1 tick; mid: 3 ticks (one nested span); slow: 5 ticks *)
  Obs.with_trace ~trace:"fast" (fun () -> Obs.with_span "r" (fun () -> ()));
  Obs.with_trace ~trace:"mid" (fun () ->
      Obs.with_span "r" (fun () -> Obs.with_span "i" (fun () -> ())));
  Obs.with_trace ~trace:"slow" (fun () ->
      Obs.with_span "r" (fun () ->
          Obs.with_span "i1" (fun () -> ());
          Obs.with_span "i2" (fun () -> ())));
  (* untraced spans never become exemplars *)
  Obs.with_span "untraced" (fun () -> ());
  (match Obs.exemplars () with
  | [ a; b ] ->
      check_string "slowest first" "slow" a.Obs.ex_trace;
      check_close "slow root duration" 5. a.Obs.ex_dur;
      check_int "slow tree has all three spans" 3 (List.length a.Obs.ex_spans);
      (match List.rev a.Obs.ex_spans with
      | root :: _ -> check_string "root last" "r" root.Obs.sp_name
      | [] -> Alcotest.fail "empty exemplar tree");
      check_string "second slowest kept" "mid" b.Obs.ex_trace;
      check_bool "fast evicted by capacity" true (b.Obs.ex_trace <> "fast")
  | l -> Alcotest.failf "expected 2 exemplars, got %d" (List.length l));
  (* spans carry the trace id *)
  check_bool "spans tagged with trace" true
    (List.exists (fun sp -> sp.Obs.sp_trace = "slow") (Obs.spans ()));
  Obs.set_exemplar_capacity 8;
  teardown ()

(* Satellite: a reset on one domain must clear the span depth another
   domain holds mid-span — stale depths would skew all later nesting. *)
let test_reset_versions_domain_depth () =
  fresh ();
  let m = Mutex.create () in
  let cv = Condition.create () in
  let stage = ref 0 in
  let advance s =
    Mutex.lock m;
    stage := s;
    Condition.broadcast cv;
    Mutex.unlock m
  in
  let await s =
    Mutex.lock m;
    while !stage < s do
      Condition.wait cv m
    done;
    Mutex.unlock m
  in
  let d =
    Domain.spawn (fun () ->
        Obs.with_span "outer" (fun () ->
            advance 1;
            await 2;
            (* this domain still holds depth 1 from before the reset *)
            Obs.with_span "x" (fun () -> ())))
  in
  await 1;
  Obs.reset ();
  advance 2;
  Domain.join d;
  (match
     List.find_opt (fun sp -> sp.Obs.sp_name = "x") (Obs.spans ())
   with
  | Some x -> check_int "depth restarts at 0 after reset" 0 x.Obs.sp_depth
  | None -> Alcotest.fail "span x not recorded after reset");
  teardown ()

(* Satellite: write_file goes through temp-file + rename. *)
let test_write_file_atomic () =
  let path = Filename.temp_file "tenet_obs" ".json" in
  Obs.write_file path "{}";
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  check_string "contents written with trailing newline" "{}\n" contents;
  check_bool "no temp residue" false (Sys.file_exists (path ^ ".tmp"));
  Sys.remove path

(* --- Prometheus exposition --- *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* A miniature promtool: every sample's metric family has a TYPE line,
   histogram buckets are cumulative and end at a +Inf bucket equal to
   _count.  scripts/ci.sh runs the same lint (in awk) on a live scrape. *)
let lint_prometheus (text : string) : unit =
  let typed : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let lines = String.split_on_char '\n' text in
  List.iter
    (fun l ->
      if String.length l >= 7 && String.sub l 0 7 = "# TYPE " then
        match String.split_on_char ' ' l with
        | [ _; _; name; kind ] -> Hashtbl.replace typed name kind
        | _ -> Alcotest.failf "malformed TYPE line %S" l)
    lines;
  let strip s suf =
    if Filename.check_suffix s suf then Some (Filename.chop_suffix s suf)
    else None
  in
  let family metric =
    match
      List.find_map
        (fun suf ->
          match strip metric suf with
          | Some base when Hashtbl.find_opt typed base = Some "histogram" ->
              Some base
          | _ -> None)
        [ "_bucket"; "_sum"; "_count" ]
    with
    | Some base -> base
    | None -> metric
  in
  let last_cum = Hashtbl.create 16 in
  List.iter
    (fun l ->
      if l <> "" && l.[0] <> '#' then begin
        let metric =
          match String.index_opt l '{' with
          | Some i -> String.sub l 0 i
          | None -> (
              match String.index_opt l ' ' with
              | Some i -> String.sub l 0 i
              | None -> l)
        in
        let fam = family metric in
        if not (Hashtbl.mem typed fam) then
          Alcotest.failf "sample %S has no TYPE line (family %s)" l fam;
        (* cumulative bucket check *)
        match strip metric "_bucket" with
        | Some base -> (
            match String.rindex_opt l ' ' with
            | Some i ->
                let v =
                  float_of_string
                    (String.sub l (i + 1) (String.length l - i - 1))
                in
                let prev =
                  Option.value ~default:0.
                    (Hashtbl.find_opt last_cum base)
                in
                if v < prev then
                  Alcotest.failf "bucket series for %s not cumulative" base;
                Hashtbl.replace last_cum base v
            | None -> ())
        | None -> ()
      end)
    lines

let test_prometheus_exposition () =
  fresh ();
  Obs.count ~by:3 "pm.c";
  Obs.observe "pm.h" 0.0015;
  Obs.observe "pm.h" 1.5;
  let text = Obs.prometheus ~extra_counters:[ ("pm_x", 7) ]
      ~gauges:[ ("pm_g", 2.5) ] ()
  in
  check_bool "gauge typed" true (contains ~sub:"# TYPE pm_g gauge\n" text);
  check_bool "gauge sample" true (contains ~sub:"\npm_g 2.5\n" text);
  check_bool "counter gets _total suffix and type" true
    (contains ~sub:"# TYPE pm_c_total counter\n" text);
  check_bool "counter sample" true (contains ~sub:"\npm_c_total 3\n" text);
  check_bool "extra counter rendered" true
    (contains ~sub:"\npm_x_total 7\n" text);
  check_bool "histogram typed (name sanitized)" true
    (contains ~sub:"# TYPE pm_h histogram\n" text);
  (* 0.0015 lands in le=0.002, 1.5 in le=2: cumulative counts 1 then 2 *)
  check_bool "first bucket cumulative count" true
    (contains ~sub:"pm_h_bucket{le=\"0.002\"} 1\n" text);
  check_bool "later bucket accumulates" true
    (contains ~sub:"pm_h_bucket{le=\"2\"} 2\n" text);
  check_bool "+Inf bucket equals count" true
    (contains ~sub:"pm_h_bucket{le=\"+Inf\"} 2\n" text);
  check_bool "sum sample" true (contains ~sub:"\npm_h_sum 1.5015\n" text);
  check_bool "count sample" true (contains ~sub:"\npm_h_count 2\n" text);
  lint_prometheus text;
  teardown ()

let test_disabled_noop () =
  Obs.disable ();
  install_fake_clock ();
  Obs.reset ();
  (* reset leaves telemetry disabled; nothing below may record *)
  let c = Obs.counter "test.disabled" in
  Obs.incr c;
  Obs.add c 100;
  Obs.count ~by:7 "test.disabled";
  Obs.observe "test.disabled.h" 1.;
  let calls = ref 0 in
  let r =
    Obs.with_span "test.disabled.span" (fun () ->
        incr calls;
        "ok")
  in
  check_string "thunk still runs and returns" "ok" r;
  check_int "thunk runs exactly once" 1 !calls;
  check_int "counter untouched" 0 (Obs.value c);
  check_int "no spans recorded" 0 (List.length (Obs.spans ()));
  check_int "no histograms recorded" 0 (List.length (Obs.histograms ()))

(* --- JSON exporters --- *)

let test_trace_shape () =
  fresh ();
  Obs.with_span "a" (fun () -> ());
  Obs.count ~by:3 "test.trace.c";
  let j = Obs.chrome_trace () in
  (* the whole document parses back identically: valid JSON *)
  let s = Json.to_string j in
  check_bool "trace round-trips through the parser" true (Json.parse s = j);
  let events = Option.get (Json.to_list (Option.get (Json.member "traceEvents" j))) in
  check_int "one X event + one C event" 2 (List.length events);
  let x = List.nth events 0 and c = List.nth events 1 in
  check_bool "X event" true (Json.member "ph" x = Some (Json.String "X"));
  check_bool "X named" true (Json.member "name" x = Some (Json.String "a"));
  (* fake clock: span opens at 1s after epoch, lasts 1s -> microseconds *)
  check_bool "deterministic ts" true
    (Json.member "ts" x = Some (Json.Float 1_000_000.));
  check_bool "deterministic dur" true
    (Json.member "dur" x = Some (Json.Float 1_000_000.));
  check_bool "C event carries the counter" true
    (Json.member "args" c = Some (Json.Obj [ ("value", Json.Int 3) ]));
  teardown ()

let test_stats_shape () =
  fresh ();
  Obs.with_span "a" (fun () -> Obs.with_span "b" (fun () -> ()));
  Obs.count ~by:2 "test.stats.c";
  let j = Obs.stats () in
  let counters = Option.get (Json.member "counters" j) in
  check_bool "counter exported" true
    (Json.member "test.stats.c" counters = Some (Json.Int 2));
  let spans = Option.get (Json.member "spans" j) in
  (match Json.member "a" spans with
  | Some sa ->
      check_bool "span call count" true (Json.member "calls" sa = Some (Json.Int 1));
      (* a wraps b; fake clock gives it 3 ticks *)
      check_bool "span total deterministic" true
        (Json.member "total_s" sa = Some (Json.Float 3.))
  | None -> Alcotest.fail "span 'a' missing from stats");
  check_bool "stats round-trip" true
    (Json.parse (Json.to_string ~pretty:true j) = j);
  teardown ()

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.String "a \"quoted\"\n\ttab\\slash");
        ("i", Json.Int (-42));
        ("f", Json.Float 0.5);
        ("whole", Json.Float 3.0);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.List []; Json.Obj [] ]);
      ]
  in
  check_bool "compact round-trip" true (Json.parse (Json.to_string v) = v);
  check_bool "pretty round-trip" true
    (Json.parse (Json.to_string ~pretty:true v) = v);
  check_bool "non-finite floats print as null" true
    (Json.to_string (Json.Float infinity) = "null");
  check_bool "unicode escape" true
    (Json.parse {|"a\u0041"|} = Json.String "aA")

let test_metrics_json_roundtrip () =
  (* the CLI --json path: metrics serialize to JSON that parses back and
     re-serializes identically (stable machine-readable output) *)
  let op = Ir.Kernels.gemm ~ni:4 ~nj:4 ~nk:4 in
  let spec = Arch.Repository.tpu_like ~n:2 ~bandwidth:4 () in
  let df = Df.Zoo.gemm_ij_p_ijk_t ~p:2 () in
  let m = M.Concrete.analyze spec op df in
  let j = M.Metrics.to_json m in
  let s = Json.to_string ~pretty:true j in
  let reparsed = Json.parse s in
  check_bool "parse(print(j)) = j" true (reparsed = j);
  check_string "print is stable across a round-trip" s
    (Json.to_string ~pretty:true reparsed);
  (* a few load-bearing fields *)
  check_bool "n_instances" true
    (Json.member "n_instances" j = Some (Json.Int 64));
  check_bool "per_tensor present" true
    (match Json.member "per_tensor" j with
    | Some (Json.List (_ :: _)) -> true
    | _ -> false)

(* --- end-to-end: instrumented engines actually record --- *)

let test_engines_record () =
  fresh ();
  let op = Ir.Kernels.gemm ~ni:4 ~nj:4 ~nk:4 in
  let spec = Arch.Repository.tpu_like ~n:2 ~bandwidth:4 () in
  let df = Df.Zoo.gemm_ij_p_ijk_t ~p:2 () in
  (* concrete engine: its PE-relation iteration hits the counting engine
     (drop the memoized relation so this analyze recomputes it) *)
  M.Concrete.clear_pred_cache ();
  ignore (M.Concrete.analyze spec op df);
  check_bool "count.bset_calls > 0" true
    (Obs.value (Obs.counter "count.bset_calls") > 0);
  check_int "concrete.analyses" 1 (Obs.value (Obs.counter "concrete.analyses"));
  (* relational engine: counts every volume relation *)
  ignore (M.Model.analyze ~validate:false spec op df);
  check_int "model.relational_analyses" 1
    (Obs.value (Obs.counter "model.relational_analyses"));
  check_bool "count.points_enumerated > 0" true
    (Obs.value (Obs.counter "count.points_enumerated") > 0);
  check_bool "volumes span recorded" true
    (List.exists (fun sp -> sp.Obs.sp_name = "model.volumes") (Obs.spans ()));
  (* dse: per-candidate counters *)
  let cands = Dse.candidates_2d op ~p:2 in
  ignore (Dse.evaluate_all ~objective:Dse.Latency spec op cands);
  check_int "dse.candidates_evaluated" (List.length cands)
    (Obs.value (Obs.counter "dse.candidates_evaluated"));
  teardown ()

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting & ordering" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick
            test_span_exception_safety;
        ] );
      ( "counters",
        [
          Alcotest.test_case "aggregation" `Quick test_counter_aggregation;
          Alcotest.test_case "histograms" `Quick test_histograms;
          Alcotest.test_case "quantiles" `Quick test_quantiles;
          Alcotest.test_case "snapshot diff" `Quick test_snapshot_diff;
          Alcotest.test_case "disabled no-op" `Quick test_disabled_noop;
        ] );
      ( "service",
        [
          Alcotest.test_case "span ring buffer" `Quick test_span_ring;
          Alcotest.test_case "slow-request exemplars" `Quick test_exemplars;
          Alcotest.test_case "reset versions domain depth" `Quick
            test_reset_versions_domain_depth;
          Alcotest.test_case "atomic write_file" `Quick test_write_file_atomic;
          Alcotest.test_case "prometheus exposition" `Quick
            test_prometheus_exposition;
        ] );
      ( "json",
        [
          Alcotest.test_case "chrome trace shape" `Quick test_trace_shape;
          Alcotest.test_case "stats shape" `Quick test_stats_shape;
          Alcotest.test_case "value round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "metrics round-trip" `Quick
            test_metrics_json_roundtrip;
        ] );
      ( "integration",
        [ Alcotest.test_case "engines record" `Quick test_engines_record ] );
    ]
