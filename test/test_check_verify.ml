(* Differential sanitizer for the capacity checker (TN014/TN015/TN017):
   the analytic peak enumeration in {!Tenet_analysis.Capacity} and the
   cycle-level machine in {!Tenet_sim.Simulator} implement the same
   transfer attribution (lex-least supplying predecessor, window-1
   registers) from independent code paths.  Their observed peaks must
   agree exactly on every zoo subject.

   The default run covers a light subset; set TENET_CHECK_VERIFY=1 for
   the full zoo sweep (scripts/ci.sh runs one such shard). *)

module An = Tenet.Analysis
module Sim = Tenet.Sim

let check_int = Alcotest.(check int)

let full_sweep () =
  match Sys.getenv_opt "TENET_CHECK_VERIFY" with
  | Some "1" -> true
  | _ -> false

let subjects () =
  let all = An.Checker.zoo_subjects () in
  if full_sweep () then all
  else
    List.filter
      (fun (s : An.Checker.subject) -> s.An.Checker.s_kernel <> "conv")
      all

let test_peaks_agree () =
  let subs = subjects () in
  Alcotest.(check bool) "enough subjects" true (List.length subs >= 30);
  List.iter
    (fun (s : An.Checker.subject) ->
      let label what =
        Printf.sprintf "%s / %s / %s: %s" s.An.Checker.s_arch
          s.An.Checker.s_kernel
          s.An.Checker.s_df.Tenet.Dataflow.Dataflow.name what
      in
      let pk =
        An.Capacity.enumerate_peaks s.An.Checker.s_spec s.An.Checker.s_op
          s.An.Checker.s_df
      in
      let r =
        Sim.Simulator.run ~window:1 s.An.Checker.s_spec s.An.Checker.s_op
          s.An.Checker.s_df
      in
      check_int (label "peak per-PE live") r.Sim.Simulator.peak_pe_live
        pk.An.Capacity.pe_live;
      check_int (label "peak chip live") r.Sim.Simulator.peak_chip_live
        pk.An.Capacity.chip_live;
      check_int (label "peak link load") r.Sim.Simulator.peak_link_load
        pk.An.Capacity.link_load;
      check_int (label "peak fanout") r.Sim.Simulator.peak_fanout
        pk.An.Capacity.fanout)
    subs

let () =
  Alcotest.run "check-verify"
    [
      ( "differential",
        [ Alcotest.test_case "sim peaks = capacity peaks" `Quick
            test_peaks_agree ] );
    ]
