(* Tests for tenet.serve: the versioned request/response API, the
   result cache, deadlines, the batch runner and the server loop.

   Determinism hooks used here:
   - Parallel.set_time_source installs a fake clock so deadline expiry
     is exact (each now() call advances the clock by a fixed step, so a
     1-step deadline always expires right after the first stage);
   - Parallel.set_queue_limit + a gate task that blocks the single
     worker make the overload path reproducible. *)

module Api = Tenet.Serve.Api
module Protocol = Tenet.Serve.Protocol
module Cache = Tenet.Serve.Cache
module Server = Tenet.Serve.Server
module Config = Tenet.Serve.Config
module Admission = Tenet.Serve.Admission
module Disk_cache = Tenet.Serve.Disk_cache
module Parallel = Tenet.Util.Parallel
module Json = Tenet.Obs.Json
module An = Tenet.Analysis
module M = Tenet.Model

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let found = ref false in
  for i = 0 to nh - nn do
    if String.sub hay i nn = needle then found := true
  done;
  !found

let small_analyze ?(id = "") ?deadline_ms ?(sizes = [ 8; 8; 8 ]) () =
  {
    (Api.Request.default Api.Request.Analyze) with
    Api.Request.id;
    sizes;
    deadline_ms;
  }

(* --- request codec --- *)

let test_request_roundtrip_defaults () =
  List.iter
    (fun cmd ->
      let r = Api.Request.default cmd in
      (* [cmd] is the one required field, and default ids are empty *)
      match Api.Request.of_json (Api.Request.to_json r) with
      | Ok r' -> check_bool "roundtrip" true (r = r')
      | Error e ->
          Alcotest.fail (Api.Request.decode_error_message e))
    [
      Api.Request.Analyze;
      Api.Request.Volumes;
      Api.Request.Dse;
      Api.Request.Check;
      Api.Request.Stats;
    ]

(* Every Table III triple: a request naming the subject's kernel, arch
   and zoo dataflow survives the codec unchanged. *)
let test_request_roundtrip_zoo () =
  let subjects = An.Checker.zoo_subjects () in
  check_bool "zoo is populated" true (List.length subjects >= 75);
  List.iteri
    (fun i (s : An.Checker.subject) ->
      let r =
        {
          (Api.Request.default Api.Request.Check) with
          Api.Request.id = Printf.sprintf "zoo-%d" i;
          kernel = s.An.Checker.s_kernel;
          arch = s.An.Checker.s_arch;
          dataflow = Some s.An.Checker.s_df.Tenet.Dataflow.Dataflow.name;
          adjacency = (if i mod 2 = 0 then `Inner_step else `Lex_step);
          engine = (if i mod 3 = 0 then `Relational else `Concrete);
          strict = i mod 5 = 0;
        }
      in
      (* through the actual wire format: string, not just Json.t *)
      let j = Json.parse (Json.to_string (Api.Request.to_json r)) in
      match Api.Request.of_json j with
      | Ok r' -> check_bool "roundtrip" true (r = r')
      | Error e ->
          Alcotest.fail (Api.Request.decode_error_message e))
    subjects

let test_request_unknown_field () =
  match
    Api.Request.of_json
      (Json.Obj [ ("cmd", Json.String "analyze"); ("bogus", Json.Int 1) ])
  with
  | Ok _ -> Alcotest.fail "unknown field accepted"
  | Error e ->
      check_bool "names the field" true
        (contains (Api.Request.decode_error_message e) "bogus")

let test_request_missing_cmd () =
  match Api.Request.of_json (Json.Obj [ ("id", Json.String "x") ]) with
  | Ok _ -> Alcotest.fail "missing cmd accepted"
  | Error e ->
      check_bool "names cmd" true
        (contains (Api.Request.decode_error_message e) "cmd")

let test_request_bad_version () =
  match
    Api.Request.of_json
      (Json.Obj [ ("cmd", Json.String "stats"); ("api_version", Json.Int 9) ])
  with
  | Error (Api.Request.Bad_version 9) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Bad_version 9"

let test_request_type_mismatch () =
  match
    Api.Request.of_json
      (Json.Obj [ ("cmd", Json.String "analyze"); ("window", Json.String "x") ])
  with
  | Ok _ -> Alcotest.fail "type mismatch accepted"
  | Error e ->
      check_bool "names window" true
        (contains (Api.Request.decode_error_message e) "window")

let test_fingerprint_ignores_inert_fields () =
  let a = small_analyze ~id:"a" ~deadline_ms:5 () in
  let b = small_analyze ~id:"b" () in
  check_string "same fingerprint" (Api.Request.fingerprint a)
    (Api.Request.fingerprint b);
  let c = small_analyze ~id:"a" ~sizes:[ 9; 8; 8 ] () in
  check_bool "sizes change it" true
    (Api.Request.fingerprint a <> Api.Request.fingerprint c);
  (* priority steers admission, never the result: same cache key *)
  let hi = { a with Api.Request.priority = `High } in
  check_string "priority blanked" (Api.Request.fingerprint a)
    (Api.Request.fingerprint hi)

let test_request_priority_codec () =
  (* encoded on the wire... *)
  check_bool "encoded" true
    (contains
       (Json.to_string
          (Api.Request.to_json
             { (small_analyze ()) with Api.Request.priority = `Low }))
       "\"priority\":\"low\"");
  (* ...decoded from it... *)
  (match
     Api.Request.of_json
       (Json.Obj
          [ ("cmd", Json.String "analyze"); ("priority", Json.String "high") ])
   with
  | Ok r -> check_bool "decoded high" true (r.Api.Request.priority = `High)
  | Error e -> Alcotest.fail (Api.Request.decode_error_message e));
  (* ...absent means normal... *)
  (match Api.Request.of_json (Json.Obj [ ("cmd", Json.String "analyze") ]) with
  | Ok r -> check_bool "default normal" true (r.Api.Request.priority = `Normal)
  | Error e -> Alcotest.fail (Api.Request.decode_error_message e));
  (* ...and unknown tiers are refused, naming the candidates *)
  match
    Api.Request.of_json
      (Json.Obj
         [ ("cmd", Json.String "analyze"); ("priority", Json.String "urgent") ])
  with
  | Ok _ -> Alcotest.fail "unknown priority accepted"
  | Error e ->
      let msg = Api.Request.decode_error_message e in
      check_bool "names the field" true (contains msg "priority")

(* --- config --- *)

let with_env (pairs : (string * string) list) (f : unit -> 'a) : 'a =
  let olds = List.map (fun (k, _) -> (k, Sys.getenv_opt k)) pairs in
  List.iter (fun (k, v) -> Unix.putenv k v) pairs;
  Fun.protect
    ~finally:(fun () ->
      (* putenv "" reads back as absent through the None | Some ""
         cases in Config — the closest OCaml gets to unsetenv *)
      List.iter
        (fun (k, old) -> Unix.putenv k (Option.value old ~default:""))
        olds)
    f

let test_config_load () =
  check_int "default queue" 64 Config.default.Config.queue_limit;
  check_int "default workers" 1 Config.default.Config.workers;
  check_bool "no persistence by default" true
    (Config.default.Config.cache_dir = None);
  with_env
    [
      (Config.queue_env, "8");
      (Config.workers_env, "3");
      (Config.worker_jobs_env, "2");
      (Config.cache_dir_env, "/tmp/tenet-cache-test");
      (Config.shed_low_env, "2");
      (Config.shed_normal_env, "5");
    ]
    (fun () ->
      let c = Config.load () in
      check_int "env queue" 8 c.Config.queue_limit;
      check_int "env workers" 3 c.Config.workers;
      check_int "env worker jobs" 2 c.Config.worker_jobs;
      check_bool "env cache dir" true
        (c.Config.cache_dir = Some "/tmp/tenet-cache-test");
      check_bool "env shed low" true (c.Config.shed_low = Some 2);
      check_bool "env shed normal" true (c.Config.shed_normal = Some 5));
  with_env
    [ (Config.queue_env, "zap") ]
    (fun () ->
      match Config.load () with
      | _ -> Alcotest.fail "malformed queue env accepted"
      | exception Failure msg ->
          check_bool "names the variable" true
            (contains msg Config.queue_env))

let test_config_watermarks () =
  let d = Config.default in
  check_int "low defaults to queue/2" 32 (Config.shed_low_watermark d);
  check_int "normal defaults to the hard limit" 64
    (Config.shed_normal_watermark d);
  (* clamped into [1, queue] and ordered low <= normal whatever the raw
     configuration says *)
  let wild =
    { d with Config.queue_limit = 10; shed_low = Some 50; shed_normal = Some 3 }
  in
  check_int "low clamped to queue" 10 (Config.shed_low_watermark wild);
  check_int "normal >= low" 10 (Config.shed_normal_watermark wild);
  let tiny = { d with Config.queue_limit = 1 } in
  check_int "low floor is 1" 1 (Config.shed_low_watermark tiny);
  (match Config.validate { d with Config.queue_limit = 0 } with
  | () -> Alcotest.fail "queue_limit 0 validated"
  | exception Failure _ -> ());
  match Config.validate { d with Config.workers = 0 } with
  | () -> Alcotest.fail "workers 0 validated"
  | exception Failure _ -> ()

(* --- admission --- *)

let test_admission_decide () =
  let decide = Admission.decide ~queue_limit:10 ~shed_low:4 ~shed_normal:8 in
  check_bool "calm queue admits low" true
    (decide ~depth:0 ~priority:`Low = Admission.Admit);
  check_bool "low sheds at its watermark" true
    (decide ~depth:4 ~priority:`Low
    = Admission.Shed Admission.Low_priority);
  check_bool "normal rides past the low watermark" true
    (decide ~depth:4 ~priority:`Normal = Admission.Admit);
  check_bool "normal sheds at its watermark" true
    (decide ~depth:8 ~priority:`Normal
    = Admission.Shed Admission.Normal_priority);
  check_bool "high rides past every watermark" true
    (decide ~depth:9 ~priority:`High = Admission.Admit);
  check_bool "hard limit sheds high too" true
    (decide ~depth:10 ~priority:`High
    = Admission.Shed Admission.Hard_limit);
  check_bool "hard limit outranks the tiers" true
    (decide ~depth:10 ~priority:`Low
    = Admission.Shed Admission.Hard_limit);
  (* the hard-limit message keeps the legacy bytes *)
  check_string "legacy overload message"
    "work queue is full (limit 10); retry later or raise TENET_SERVE_QUEUE"
    (Admission.message ~queue_limit:10 ~shed_low:4 ~shed_normal:8
       ~waited_ms:0. Admission.Hard_limit);
  (* expiry-in-queue needs a positive deadline actually exceeded *)
  check_bool "no deadline, no expiry" false
    (Admission.expired_in_queue ~deadline_ms:None ~waited_ms:1e6);
  check_bool "deadline 0 disables" false
    (Admission.expired_in_queue ~deadline_ms:(Some 0) ~waited_ms:1e6);
  check_bool "waited past it" true
    (Admission.expired_in_queue ~deadline_ms:(Some 5) ~waited_ms:6.);
  check_bool "still within it" false
    (Admission.expired_in_queue ~deadline_ms:(Some 5) ~waited_ms:4.)

let test_admission_counters () =
  if not (Tenet.Obs.enabled ()) then Tenet.Obs.enable ();
  let get k = List.assoc k (Admission.counts ()) in
  let low0 = get "low" and expired0 = get "expired" in
  Admission.note Admission.Low_priority;
  Admission.note Admission.Expired;
  check_int "low tier counted" (low0 + 1) (get "low");
  check_int "expired tier counted" (expired0 + 1) (get "expired")

(* --- metrics codec --- *)

(* Canonical round-trip: of_json inverts to_json, and re-serializing
   gives the same bytes (what cache-hit determinism rests on). *)
let test_metrics_roundtrip () =
  List.iter
    (fun (s : An.Checker.subject) ->
      let m =
        M.Concrete.analyze s.An.Checker.s_spec s.An.Checker.s_op
          s.An.Checker.s_df
      in
      let str = Json.to_string (M.Metrics.to_json m) in
      match M.Metrics.of_json (Json.parse str) with
      | Error msg -> Alcotest.fail msg
      | Ok m' ->
          check_string "canonical bytes" str
            (Json.to_string (M.Metrics.to_json m')))
    (match An.Checker.zoo_subjects () with
    | a :: b :: c :: d :: _ -> [ a; b; c; d ]
    | l -> l)

(* --- the cache --- *)

let test_cache_lru_eviction () =
  let c = Cache.create ~bytes:100 () in
  Cache.add c ~key:"a" ~size:40 "A";
  Cache.add c ~key:"b" ~size:40 "B";
  ignore (Cache.find c "a");
  (* a is now fresher than b; adding 40 more must evict b, not a *)
  Cache.add c ~key:"c" ~size:40 "C";
  check_bool "a kept" true (Cache.find c "a" = Some "A");
  check_bool "b evicted" true (Cache.find c "b" = None);
  check_bool "c kept" true (Cache.find c "c" = Some "C");
  let s = Cache.stats c in
  check_int "entries" 2 s.Cache.entries;
  check_int "bytes" 80 s.Cache.bytes;
  check_int "evictions" 1 s.Cache.evictions

let test_cache_oversized_and_disabled () =
  let c = Cache.create ~bytes:10 () in
  Cache.add c ~key:"big" ~size:11 "X";
  check_bool "oversized not stored" true (Cache.find c "big" = None);
  let off = Cache.create ~bytes:0 () in
  Cache.add off ~key:"k" ~size:1 "X";
  check_bool "disabled" true (Cache.find off "k" = None)

let test_cache_hit_byte_identical () =
  Api.clear_cache ();
  let r = small_analyze ~id:"dup" ~sizes:[ 12; 12; 12 ] () in
  let before = (Api.cache_stats ()).Cache.hits in
  let l1 = Protocol.response_line (Api.run r) in
  let l2 = Protocol.response_line (Api.run r) in
  check_string "byte-identical" l1 l2;
  check_int "one hit" (before + 1) (Api.cache_stats ()).Cache.hits;
  check_bool "a real payload" true (contains l1 "\"kind\":\"metrics\"")

(* --- the template cache tier --- *)

let metrics_of_response (resp : Api.Response.t) =
  match resp.Api.Response.body.Api.Response.payload with
  | Some (Api.Response.Metrics { metrics; forms; _ }) -> (metrics, forms)
  | _ -> Alcotest.fail "expected a metrics payload"

(* Two analyze requests differing only in the extents of the [params]
   dims share one compiled template; both answers are byte-identical to
   the param-free path, and the parametric responses carry closed
   forms. *)
let test_template_cache_tier () =
  Api.clear_cache ();
  check_int "tier starts empty" 0 (Api.template_cache_entries ());
  let parametric ~id sizes =
    {
      (small_analyze ~id ~sizes ()) with
      Api.Request.params = [ "i"; "j"; "k" ];
    }
  in
  let line1 = Protocol.response_line (Api.run (parametric ~id:"p1" [ 64; 64; 64 ])) in
  check_bool "closed forms rendered" true (contains line1 "closed_forms");
  let r2 = parametric ~id:"p2" [ 48; 40; 56 ] in
  let m2, forms2 = metrics_of_response (Api.run r2) in
  check_int "one template serves both sizes" 1 (Api.template_cache_entries ());
  check_bool "second size has forms too" true (forms2 <> []);
  let plain, no_forms =
    metrics_of_response (Api.run (small_analyze ~id:"p3" ~sizes:[ 48; 40; 56 ] ()))
  in
  check_bool "no params, no forms" true (no_forms = []);
  check_string "byte-identical to the concrete engine"
    (Json.to_string (M.Metrics.to_json plain))
    (Json.to_string (M.Metrics.to_json m2));
  (* params below the template's validity floor fall back to a concrete
     evaluation: correct answer, no forms *)
  let small, small_forms =
    metrics_of_response (Api.run (parametric ~id:"p4" [ 5; 5; 5 ]))
  in
  check_bool "fallback has no forms" true (small_forms = []);
  let plain_small, _ =
    metrics_of_response (Api.run (small_analyze ~id:"p5" ~sizes:[ 5; 5; 5 ] ()))
  in
  check_string "fallback byte-identical"
    (Json.to_string (M.Metrics.to_json plain_small))
    (Json.to_string (M.Metrics.to_json small));
  (* conflicting size-abstraction requests are refused, not guessed *)
  let conflict =
    {
      (small_analyze ~id:"p6" ()) with
      Api.Request.params = [ "i" ];
      scale_dims = [ "j" ];
    }
  in
  check_bool "params+scale_dims rejected" true
    (Api.Response.is_error (Api.run conflict));
  let unknown =
    { (small_analyze ~id:"p7" ()) with Api.Request.params = [ "q" ] }
  in
  check_bool "unknown param rejected" true
    (Api.Response.is_error (Api.run unknown))

let test_errors_not_cached () =
  Api.clear_cache ();
  let r =
    { (small_analyze ~id:"bad" ()) with Api.Request.arch = "no-such-arch" }
  in
  let resp = Api.run r in
  check_bool "is error" true (Api.Response.is_error resp);
  check_int "nothing stored" 0 (Api.cache_stats ()).Cache.entries

(* --- the persistent tier --- *)

let temp_dir () =
  let path = Filename.temp_file "tenet-disk-cache" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let replace_all s ~sub ~by =
  let b = Buffer.create (String.length s) in
  let n = String.length s and m = String.length sub in
  let i = ref 0 in
  while !i <= n - m do
    if String.sub s !i m = sub then begin
      Buffer.add_string b by;
      i := !i + m
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.add_substring b s !i (n - !i);
  Buffer.contents b

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let test_disk_cache_roundtrip () =
  let dir = temp_dir () in
  check_bool "missing file loads empty" true (Disk_cache.load ~dir = []);
  let e k b = { Disk_cache.key = k; body = b } in
  Disk_cache.save ~dir [ e "b" "2"; e "a" "1" ];
  check_bool "roundtrip, sorted by key" true
    (Disk_cache.load ~dir = [ e "a" "1"; e "b" "2" ]);
  (* merge: union with the on-disk state, newcomers winning *)
  let n = Disk_cache.merge_save ~dir [ e "b" "2'"; e "c" "3" ] in
  check_int "merged size" 3 n;
  check_bool "newcomer wins, old keys survive" true
    (Disk_cache.load ~dir = [ e "a" "1"; e "b" "2'"; e "c" "3" ]);
  (* a torn tail (killed writer without the atomic rename) loads as the
     undamaged prefix *)
  let path = Filename.concat dir "results-v1.jsonl" in
  write_file path (read_file path ^ "{\"key\":\"d\",\"bo");
  check_bool "torn tail dropped" true
    (Disk_cache.load ~dir = [ e "a" "1"; e "b" "2'"; e "c" "3" ]);
  (* a foreign version header loads as empty, not an error *)
  write_file path "{\"tenet_disk_cache\":99}\n{\"key\":\"a\",\"body\":\"1\"}\n";
  check_bool "foreign version ignored" true (Disk_cache.load ~dir = [])

(* Cold restart with a warm disk cache: save, wipe memory, load, and the
   replayed response is byte-identical to the original run (the
   acceptance gate behind `tenet serve --cache-dir`). *)
let test_warm_restart_byte_identical () =
  Api.clear_cache ();
  let dir = temp_dir () in
  let r = small_analyze ~id:"persist" ~sizes:[ 13; 13; 13 ] () in
  let line1 = Protocol.response_line (Api.run r) in
  let saved = Api.save_disk_cache ~dir in
  check_bool "saved the entry" true (saved >= 1);
  Api.clear_cache ();
  check_int "memory is cold" 0 (Api.cache_stats ()).Cache.entries;
  let loaded = Api.load_disk_cache ~dir in
  check_int "loaded what was saved" saved loaded;
  let tiers = Api.cache_tiers () in
  check_int "stats report the load" loaded tiers.Api.disk_entries_loaded;
  check_bool "stats report the dir" true
    (tiers.Api.tiers_disk_dir = Some dir);
  let hits0 = (Api.cache_stats ()).Cache.hits in
  let line2 = Protocol.response_line (Api.run r) in
  check_string "byte-identical across restart" line1 line2;
  check_int "served from cache" (hits0 + 1) (Api.cache_stats ()).Cache.hits

(* Tampered or damaged entries are rejected at load, never replayed. *)
let test_disk_cache_tamper_rejected () =
  Api.clear_cache ();
  let dir = temp_dir () in
  ignore (Api.run (small_analyze ~id:"t" ~sizes:[ 14; 14; 14 ] ()));
  let saved = Api.save_disk_cache ~dir in
  check_bool "saved" true (saved >= 1);
  let path = Filename.concat dir "results-v1.jsonl" in
  (* flip every ok status inside the stored bodies: still valid JSON
     lines, no longer valid cache entries *)
  write_file path
    (replace_all (read_file path) ~sub:{|\"status\":\"ok\"|}
       ~by:{|\"status\":\"er\"|});
  Api.clear_cache ();
  check_int "tampered entries rejected" 0 (Api.load_disk_cache ~dir)

(* --- deadlines --- *)

(* A fake clock that advances one step per reading makes expiry exact:
   with a deadline shorter than one step, the poll after the first
   stage always fires. *)
let with_fake_clock f =
  let t = ref 0. in
  Parallel.set_time_source (fun () ->
      t := !t +. 1.;
      !t);
  Fun.protect
    ~finally:(fun () -> Parallel.set_time_source Unix.gettimeofday)
    f

let test_deadline_partial_volumes () =
  Api.clear_cache ();
  let r =
    {
      (Api.Request.default Api.Request.Volumes) with
      Api.Request.id = "dl";
      sizes = [ 8; 8; 8 ];
      deadline_ms = Some 1;
    }
  in
  let resp = with_fake_clock (fun () -> Api.run r) in
  let b = resp.Api.Response.body in
  check_string "status" "partial"
    (Api.Response.status_to_string b.Api.Response.status);
  check_bool "no raw error" true (b.Api.Response.error = None);
  (match b.Api.Response.payload with
  | Some (Api.Response.Volumes { tensors; _ }) ->
      (* gemm has three tensors; only the first stage ran *)
      check_int "finished tensors" 1 (List.length tensors)
  | _ -> Alcotest.fail "expected a volumes payload");
  (match
     List.find_opt
       (fun d -> d.An.Diagnostic.code = "TN013")
       b.Api.Response.diagnostics
   with
  | Some d ->
      check_bool "names skipped stages" true
        (contains d.An.Diagnostic.message "volumes[")
  | None -> Alcotest.fail "expected a TN013 diagnostic");
  (* partials are not cached: the same request without a deadline
     computes the full answer *)
  let full = Api.run { r with Api.Request.deadline_ms = None } in
  match full.Api.Response.body.Api.Response.payload with
  | Some (Api.Response.Volumes { tensors; _ }) ->
      check_int "full tensors" 3 (List.length tensors)
  | _ -> Alcotest.fail "expected a full volumes payload"

let test_deadline_all_stages_completed () =
  Api.clear_cache ();
  (* analyze without --strict has a single stage, which always runs:
     over-deadline but nothing skipped stays "ok" with a TN013 warning *)
  let r = small_analyze ~id:"dl-ok" ~deadline_ms:1 () in
  let resp = with_fake_clock (fun () -> Api.run r) in
  let b = resp.Api.Response.body in
  check_string "status" "ok"
    (Api.Response.status_to_string b.Api.Response.status);
  check_bool "payload present" true (b.Api.Response.payload <> None);
  check_bool "TN013 attached" true
    (List.exists
       (fun d -> d.An.Diagnostic.code = "TN013")
       b.Api.Response.diagnostics)

let test_deadline_ok_not_cached () =
  Api.clear_cache ();
  (* an over-deadline-but-complete "ok" body carries a timing-dependent
     TN013 warning; the fingerprint is deadline-blind, so caching it
     would replay the warning for a later identical request with a
     different (or no) deadline *)
  let r = small_analyze ~id:"dl-nc" ~deadline_ms:1 () in
  let _ = with_fake_clock (fun () -> Api.run r) in
  check_int "warned body not stored" 0 (Api.cache_stats ()).Cache.entries;
  let clean = Api.run { r with Api.Request.deadline_ms = None } in
  check_bool "no inherited TN013" true
    (not
       (List.exists
          (fun d -> d.An.Diagnostic.code = "TN013")
          clean.Api.Response.body.Api.Response.diagnostics));
  check_int "clean body stored" 1 (Api.cache_stats ()).Cache.entries

(* --- error classification --- *)

let test_error_classification () =
  (* an unknown iterator in the client's C source is the client's
     mistake: bad_request, not internal *)
  let r =
    {
      (Api.Request.default Api.Request.Analyze) with
      Api.Request.id = "cls";
      c_source =
        Some
          "for (i = 0; i < 4; i++)\n\
           for (j = 0; j < 4; j++)\n\
           for (k = 0; k < 4; k++)\n\
           Y[i][j] += A[i][z] * B[k][j];";
    }
  in
  (match Api.run r with
  | { Api.Response.body = { Api.Response.error = Some (kind, _); _ }; _ } ->
      check_string "kind" "bad_request"
        (Api.Response.error_kind_to_string kind)
  | _ -> Alcotest.fail "expected an error response");
  (* an unknown scale dim likewise *)
  let r =
    { (small_analyze ~id:"sd" ()) with Api.Request.scale_dims = [ "zz" ] }
  in
  match Api.run r with
  | {
      Api.Response.body = { Api.Response.error = Some (kind, msg); _ };
      _;
    } ->
      check_string "kind" "bad_request"
        (Api.Response.error_kind_to_string kind);
      check_bool "names the dim" true (contains msg "zz")
  | _ -> Alcotest.fail "expected an error response"

(* --- the pool: a raising task must not kill its worker --- *)

let test_worker_survives_raising_task () =
  Parallel.set_queue_limit max_int;
  (* pre-fix, the sole worker domain died on the exception and the
     follow-up task was never drained *)
  check_bool "raising task submitted" true
    (Parallel.try_submit (fun () -> failwith "boom"));
  (* earlier tests may have grown the pool; poison every worker so the
     follow-up cannot dodge the dead one *)
  for _ = 2 to Parallel.spawned_workers () do
    ignore (Parallel.try_submit (fun () -> failwith "boom"))
  done;
  let hit = Atomic.make false in
  check_bool "follow-up submitted" true
    (Parallel.try_submit (fun () -> Atomic.set hit true));
  let deadline = Unix.gettimeofday () +. 10. in
  while (not (Atomic.get hit)) && Unix.gettimeofday () < deadline do
    Domain.cpu_relax ()
  done;
  check_bool "worker survived the exception" true (Atomic.get hit)

(* --- protocol --- *)

let test_protocol_malformed_line () =
  (match Protocol.parse_line "not json at all" with
  | Ok _ -> Alcotest.fail "parsed garbage"
  | Error resp ->
      check_bool "is error" true (Api.Response.is_error resp);
      check_bool "offset in message" true
        (contains (Protocol.response_line resp) "at "));
  check_bool "comment" true (Protocol.is_comment "# note");
  check_bool "blank" true (Protocol.is_comment "   ");
  check_bool "not comment" false (Protocol.is_comment "{}")

let test_protocol_id_recovery () =
  let resp = Protocol.handle_line {|{"id":"x7","cmd":"analyze","bogus":1}|} in
  check_string "id echoed" "x7" resp.Api.Response.id;
  check_bool "bad_request" true
    (contains (Protocol.response_line resp) "bad_request")

(* --- batch --- *)

let mixed_lines =
  [
    {|{"cmd":"analyze","id":"a1","sizes":[8,8,8]}|};
    {|# a comment line|};
    {|{"cmd":"check","id":"c1","sizes":[8,8,8]}|};
    {|{"cmd":"volumes","id":"v1","sizes":[8,8,8],"tensors":["A"]}|};
    {|this line is not JSON|};
    {|{"cmd":"analyze","id":"a2","sizes":[8,8,8]}|};
    {|{"cmd":"analyze","id":"bad","space":"i%%%"}|};
    {|{"cmd":"analyze","id":"uf","frobnicate":true}|};
    {|{"cmd":"analyze","id":"a1-dup","sizes":[8,8,8]}|};
  ]

let run_batch_to_string lines =
  let in_file = Filename.temp_file "tenet_batch" ".jsonl" in
  let out_file = Filename.temp_file "tenet_batch" ".out" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove in_file;
      Sys.remove out_file)
    (fun () ->
      let oc = open_out in_file in
      List.iter (fun l -> output_string oc (l ^ "\n")) lines;
      close_out oc;
      let ic = open_in in_file and oc = open_out out_file in
      Server.batch ic oc;
      close_in ic;
      close_out oc;
      let ic = open_in out_file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s)

let test_batch_matches_oneshot () =
  Api.clear_cache ();
  let batched = run_batch_to_string mixed_lines in
  Api.clear_cache ();
  let oneshot =
    List.filter_map
      (fun l ->
        if Protocol.is_comment l then None
        else Some (Protocol.response_line (Protocol.handle_line l) ^ "\n"))
      mixed_lines
    |> String.concat ""
  in
  check_string "batch = one-shot" oneshot batched

let test_batch_deterministic_across_jobs () =
  let saved = Parallel.jobs () in
  Fun.protect
    ~finally:(fun () -> Parallel.set_jobs saved)
    (fun () ->
      Api.clear_cache ();
      Parallel.set_jobs 1;
      let seq = run_batch_to_string mixed_lines in
      Api.clear_cache ();
      Parallel.set_jobs 4;
      let par = run_batch_to_string mixed_lines in
      check_string "jobs=1 = jobs=4" seq par)

(* --- the server loop: overload and drain --- *)

let test_serve_overload () =
  Api.clear_cache ();
  let saved = Parallel.jobs () in
  Fun.protect
    ~finally:(fun () ->
      Parallel.set_queue_limit max_int;
      Parallel.set_jobs saved)
    (fun () ->
      Parallel.set_jobs 1;
      Parallel.set_queue_limit 64;
      (* Earlier tests in this binary may have spawned extra worker
         domains (they live for the rest of the process), so block EVERY
         worker on a gate we control — otherwise a free worker could
         drain q1 before the server tries to submit q2, and no refusal
         would ever be produced. *)
      let gate = Atomic.make false in
      let n_started = Atomic.make 0 in
      let gate_task () =
        Atomic.incr n_started;
        while not (Atomic.get gate) do
          Domain.cpu_relax ()
        done
      in
      Fun.protect
        ~finally:(fun () -> Atomic.set gate true)
        (fun () ->
          (* the first submission also spawns the pool if needed *)
          check_bool "gate submitted" true (Parallel.try_submit gate_task);
          while Atomic.get n_started < 1 do
            Domain.cpu_relax ()
          done;
          let total = Parallel.spawned_workers () in
          for _ = 2 to total do
            check_bool "extra gate submitted" true
              (Parallel.try_submit gate_task)
          done;
          while Atomic.get n_started < total do
            Domain.cpu_relax ()
          done;
          (* every worker is busy and the queue is empty; serve with
             limit 1: req1 queues, req2 must be refused, stats answers
             inline *)
          let req_in, req_out = Unix.pipe () in
          let resp_in, resp_out = Unix.pipe () in
          let server =
            Domain.spawn (fun () ->
                let ic = Unix.in_channel_of_descr req_in in
                let oc = Unix.out_channel_of_descr resp_out in
                Server.serve_channels ~queue_limit:1 ic oc;
                close_out oc)
          in
          let oc = Unix.out_channel_of_descr req_out in
          output_string oc
            ({|{"cmd":"analyze","id":"q1","sizes":[8,8,8]}|} ^ "\n"
            ^ {|{"cmd":"analyze","id":"q2","sizes":[9,9,9]}|} ^ "\n"
            ^ {|{"cmd":"stats","id":"s"}|} ^ "\n");
          close_out oc;
          let ic = Unix.in_channel_of_descr resp_in in
          (* q2's refusal and the inline stats answer arrive while q1 is
             still stuck behind the gate *)
          let l1 = input_line ic in
          let l2 = input_line ic in
          check_bool "q2 overloaded" true
            (contains l1 "\"id\":\"q2\"" && contains l1 "overloaded");
          check_bool "stats inline" true
            (contains l2 "\"id\":\"s\"" && contains l2 "\"kind\":\"stats\"");
          (* release the gate: q1 completes and EOF drain lets serve
             return *)
          Atomic.set gate true;
          let l3 = input_line ic in
          check_bool "q1 completed" true
            (contains l3 "\"id\":\"q1\"" && contains l3 "\"status\":\"ok\"");
          Domain.join server;
          close_in ic))

(* --- stats --- *)

let test_stats_request () =
  let resp = Api.run (Api.Request.default Api.Request.Stats) in
  match resp.Api.Response.body.Api.Response.payload with
  | Some (Api.Response.Stats j) ->
      (* one structured section for every cache tier *)
      (match Json.member "caches" j with
      | Some c ->
          check_bool "result tier" true (Json.member "result" c <> None);
          check_bool "template tier" true (Json.member "template" c <> None);
          check_bool "disk tier" true (Json.member "disk" c <> None)
      | None -> Alcotest.fail "caches section missing");
      (match Json.member "pool" j with
      | Some p ->
          check_bool "running gauge" true (Json.member "running" p <> None)
      | None -> Alcotest.fail "pool section missing");
      (match Json.member "queue" j with
      | Some q ->
          check_bool "shed tiers" true (Json.member "shed" q <> None)
      | None -> Alcotest.fail "queue section missing")
  | _ -> Alcotest.fail "expected a stats payload"

(* --- observability: windows, prometheus, access log, tracing --- *)

module Obs = Tenet.Obs
module Access_log = Tenet.Serve.Access_log

let stats_json () =
  match
    (Api.run (Api.Request.default Api.Request.Stats)).Api.Response.body
      .Api.Response.payload
  with
  | Some (Api.Response.Stats j) -> j
  | _ -> Alcotest.fail "expected a stats payload"

let test_stats_window () =
  if not (Obs.enabled ()) then Obs.enable ();
  Api.clear_cache ();
  (* first JSON scrape arms (or re-arms) the window *)
  ignore (stats_json ());
  let r = small_analyze ~id:"w1" ~sizes:[ 10; 10; 10 ] () in
  ignore (Api.run r);
  ignore (Api.run r) (* cache hit *);
  let j = stats_json () in
  match Json.member "window" j with
  | None -> Alcotest.fail "second scrape must carry a window"
  | Some w ->
      (match Json.member "requests" w with
      | Some (Json.Int n) ->
          check_bool "window counts this window's requests" true (n >= 2)
      | _ -> Alcotest.fail "window.requests missing");
      check_bool "window has a rate" true
        (Json.member "request_rate_rps" w <> None);
      (match Json.member "cache_hit_ratio" w with
      | Some (Json.Float f) ->
          check_bool "hit ratio in (0,1): one hit, one miss" true
            (f > 0. && f < 1.)
      | _ -> Alcotest.fail "window.cache_hit_ratio missing");
      (match Json.member "latency_ms" w with
      | Some lm -> check_bool "window p99" true (Json.member "p99_ms" lm <> None)
      | None -> Alcotest.fail "window.latency_ms missing")

let test_stats_prometheus () =
  if not (Obs.enabled ()) then Obs.enable ();
  Api.clear_cache ();
  ignore (Api.run (small_analyze ~id:"pm1" ~sizes:[ 11; 11; 11 ] ()));
  (* through the wire format, as a client would ask *)
  let resp = Api.run_json (Json.parse {|{"cmd":"stats","id":"pm","format":"prometheus"}|}) in
  match resp.Api.Response.body.Api.Response.payload with
  | Some (Api.Response.Stats j) ->
      check_bool "payload says prometheus" true
        (Json.member "format" j = Some (Json.String "prometheus"));
      let text =
        match Json.member "exposition" j with
        | Some (Json.String s) -> s
        | _ -> Alcotest.fail "exposition missing"
      in
      check_bool "request counter" true
        (contains text "# TYPE serve_requests_total counter");
      check_bool "latency histogram typed" true
        (contains text "# TYPE serve_request_latency histogram");
      check_bool "latency buckets" true
        (contains text "serve_request_latency_bucket{le=");
      check_bool "+Inf bucket" true
        (contains text "serve_request_latency_bucket{le=\"+Inf\"}");
      check_bool "queue depth gauge" true
        (contains text "# TYPE serve_queue_depth gauge");
      check_bool "cache bytes gauge" true (contains text "serve_cache_bytes ")
  | _ -> Alcotest.fail "expected a stats payload"

(* Queue wait is measured in the serve loop (submit -> execution), so it
   only records through a real serve session. *)
let test_queue_wait_recorded () =
  Api.clear_cache ();
  let before = Obs.hist_count (Obs.histogram "serve.queue_wait") in
  let req_in, req_out = Unix.pipe () in
  let resp_in, resp_out = Unix.pipe () in
  let server =
    Domain.spawn (fun () ->
        let ic = Unix.in_channel_of_descr req_in in
        let oc = Unix.out_channel_of_descr resp_out in
        Server.serve_channels ic oc;
        close_out oc)
  in
  let oc = Unix.out_channel_of_descr req_out in
  output_string oc
    ({|{"cmd":"analyze","id":"qw1","sizes":[8,8,8]}|} ^ "\n"
    ^ {|{"cmd":"analyze","id":"qw2","sizes":[8,8,8]}|} ^ "\n");
  close_out oc;
  let ic = Unix.in_channel_of_descr resp_in in
  let l1 = input_line ic in
  let l2 = input_line ic in
  Domain.join server;
  close_in ic;
  check_bool "both requests answered" true
    (contains (l1 ^ l2) "qw1" && contains (l1 ^ l2) "qw2");
  check_bool "queue wait observed per request" true
    (Obs.hist_count (Obs.histogram "serve.queue_wait") >= before + 2);
  (* and it surfaces in the stats queue section *)
  let j = stats_json () in
  match Json.member "queue" j with
  | Some q ->
      check_bool "wait quantiles" true (Json.member "wait" q <> None);
      check_bool "overloaded counter adjacent" true
        (Json.member "overloaded" q <> None)
  | None -> Alcotest.fail "queue section missing"

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | l -> go (l :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let test_access_log () =
  if not (Obs.enabled ()) then Obs.enable ();
  Api.clear_cache ();
  let path = Filename.temp_file "tenet_access" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Access_log.disable ();
      Sys.remove path)
    (fun () ->
      Access_log.configure path;
      let r = small_analyze ~id:"al1" ~sizes:[ 13; 13; 13 ] () in
      ignore (Api.run r);
      ignore (Api.run { r with Api.Request.id = "al2" }) (* cache hit *);
      ignore (Api.run (Api.Request.default Api.Request.Stats));
      Access_log.disable ();
      (match read_lines path with
      | [ l1; l2; l3 ] ->
          let j1 = Json.parse l1 and j2 = Json.parse l2 and j3 = Json.parse l3 in
          check_bool "id logged" true
            (Json.member "id" j1 = Some (Json.String "al1"));
          check_bool "trace = request id" true
            (Json.member "trace" j1 = Some (Json.String "al1"));
          check_bool "first is a miss" true
            (Json.member "cache" j1 = Some (Json.String "miss"));
          check_bool "second is a hit" true
            (Json.member "cache" j2 = Some (Json.String "hit"));
          check_bool "identical fingerprints" true
            (Json.member "fingerprint" j1 = Json.member "fingerprint" j2
            && Json.member "fingerprint" j1 <> None);
          check_bool "latency present" true
            (match Json.member "latency_ms" j1 with
            | Some (Json.Float _) | Some (Json.Int _) -> true
            | _ -> false);
          check_bool "status ok" true
            (Json.member "status" j1 = Some (Json.String "ok"));
          check_bool "stats bypasses cache and fingerprint" true
            (Json.member "cache" j3 = Some (Json.String "bypass")
            && Json.member "fingerprint" j3 = None)
      | l -> Alcotest.failf "expected 3 access-log lines, got %d" (List.length l));
      (* sampling: 1-in-2 keeps every other completed request *)
      let oc = open_out path in
      close_out oc (* truncate *);
      Access_log.configure ~sample:2 path;
      for i = 1 to 4 do
        ignore
          (Api.run
             (small_analyze ~id:(Printf.sprintf "s%d" i) ~sizes:[ 13; 13; 13 ] ()))
      done;
      Access_log.disable ();
      check_int "half the requests logged" 2 (List.length (read_lines path)))

let test_request_trace_exemplar () =
  if not (Obs.enabled ()) then Obs.enable ();
  Api.clear_cache ();
  ignore (Api.run (small_analyze ~id:"trace-me" ~sizes:[ 14; 14; 14 ] ()));
  match
    List.find_opt
      (fun ex -> ex.Obs.ex_trace = "trace-me")
      (Obs.exemplars ())
  with
  | None -> Alcotest.fail "request did not leave an exemplar"
  | Some ex -> (
      match List.rev ex.Obs.ex_spans with
      | root :: _ ->
          check_string "root span is the request" "serve.request"
            root.Obs.sp_name
      | [] -> Alcotest.fail "empty exemplar span tree")

let () =
  Alcotest.run "serve"
    [
      ( "request codec",
        [
          Alcotest.test_case "defaults roundtrip" `Quick
            test_request_roundtrip_defaults;
          Alcotest.test_case "zoo roundtrip" `Quick test_request_roundtrip_zoo;
          Alcotest.test_case "unknown field" `Quick test_request_unknown_field;
          Alcotest.test_case "missing cmd" `Quick test_request_missing_cmd;
          Alcotest.test_case "bad version" `Quick test_request_bad_version;
          Alcotest.test_case "type mismatch" `Quick test_request_type_mismatch;
          Alcotest.test_case "fingerprint" `Quick
            test_fingerprint_ignores_inert_fields;
          Alcotest.test_case "priority codec" `Quick
            test_request_priority_codec;
        ] );
      ( "config",
        [
          Alcotest.test_case "defaults + env" `Quick test_config_load;
          Alcotest.test_case "watermarks" `Quick test_config_watermarks;
        ] );
      ( "admission",
        [
          Alcotest.test_case "decide matrix" `Quick test_admission_decide;
          Alcotest.test_case "shed counters" `Quick test_admission_counters;
        ] );
      ( "metrics codec",
        [ Alcotest.test_case "roundtrip" `Quick test_metrics_roundtrip ] );
      ( "cache",
        [
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "oversized/disabled" `Quick
            test_cache_oversized_and_disabled;
          Alcotest.test_case "hit byte-identical" `Quick
            test_cache_hit_byte_identical;
          Alcotest.test_case "errors not cached" `Quick test_errors_not_cached;
          Alcotest.test_case "template cache tier" `Quick
            test_template_cache_tier;
        ] );
      ( "disk cache",
        [
          Alcotest.test_case "roundtrip + damage tolerance" `Quick
            test_disk_cache_roundtrip;
          Alcotest.test_case "warm restart byte-identical" `Quick
            test_warm_restart_byte_identical;
          Alcotest.test_case "tamper rejected" `Quick
            test_disk_cache_tamper_rejected;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "partial volumes" `Quick
            test_deadline_partial_volumes;
          Alcotest.test_case "completed over deadline" `Quick
            test_deadline_all_stages_completed;
          Alcotest.test_case "ok over deadline not cached" `Quick
            test_deadline_ok_not_cached;
        ] );
      ( "errors",
        [
          Alcotest.test_case "client vs internal classification" `Quick
            test_error_classification;
        ] );
      ( "pool",
        [
          Alcotest.test_case "worker survives raising task" `Quick
            test_worker_survives_raising_task;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "malformed line" `Quick
            test_protocol_malformed_line;
          Alcotest.test_case "id recovery" `Quick test_protocol_id_recovery;
        ] );
      ( "batch",
        [
          Alcotest.test_case "matches one-shot" `Quick
            test_batch_matches_oneshot;
          Alcotest.test_case "jobs-count invariant" `Quick
            test_batch_deterministic_across_jobs;
        ] );
      ( "server",
        [
          Alcotest.test_case "overload + drain" `Quick test_serve_overload;
          Alcotest.test_case "stats" `Quick test_stats_request;
        ] );
      ( "observability",
        [
          Alcotest.test_case "stats window" `Quick test_stats_window;
          Alcotest.test_case "prometheus stats" `Quick test_stats_prometheus;
          Alcotest.test_case "queue wait recorded" `Quick
            test_queue_wait_recorded;
          Alcotest.test_case "access log" `Quick test_access_log;
          Alcotest.test_case "request trace exemplar" `Quick
            test_request_trace_exemplar;
        ] );
    ]
