(* Tests for tenet.analysis: the relation-centric model checker.

   Positive: the whole Table III zoo x architecture repository sweep
   checks clean.  Negative: one test per published diagnostic code,
   each asserting the code fires with a concrete witness where the
   checker promises one. *)

module Isl = Tenet.Isl
module Ir = Tenet.Ir
module Arch = Tenet.Arch
module Df = Tenet.Dataflow
module An = Tenet.Analysis
module P = Tenet.Isl.Parser

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let codes ds = List.map (fun d -> d.An.Diagnostic.code) ds

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let found = ref false in
  for i = 0 to nh - nn do
    if String.sub hay i nn = needle then found := true
  done;
  !found

let find_code code ds =
  match
    List.find_opt (fun d -> String.equal d.An.Diagnostic.code code) ds
  with
  | Some d -> d
  | None ->
      Alcotest.fail
        (Printf.sprintf "expected %s, got [%s]" code
           (String.concat "; " (codes ds)))

let witness_of d =
  match d.An.Diagnostic.witness with
  | Some w -> w
  | None -> Alcotest.fail (d.An.Diagnostic.code ^ ": expected a witness")

let d1_spec ?(n = 8) () =
  Arch.Spec.make ~pe:(Arch.Pe_array.d1 n)
    ~topology:Arch.Interconnect.Systolic_1d ~bandwidth:64 ()

let custom_spec ~n ~rel ~interval =
  Arch.Spec.make ~pe:(Arch.Pe_array.d1 n)
    ~topology:(Arch.Interconnect.Custom { rel; interval })
    ~bandwidth:64 ()

(* --- the positive sweep ------------------------------------------- *)

let test_sweep_clean () =
  let results = An.Checker.check_subjects (An.Checker.zoo_subjects ()) in
  check_bool "enough subjects" true (List.length results >= 60);
  List.iter
    (fun ((s : An.Checker.subject), ds) ->
      match ds with
      | [] -> ()
      | d :: _ ->
          Alcotest.fail
            (Printf.sprintf "%s / %s / %s: %s" s.An.Checker.s_arch
               s.An.Checker.s_kernel s.An.Checker.s_df.Df.Dataflow.name
               (An.Diagnostic.to_string d)))
    results

(* --- TN001: rank mismatch ----------------------------------------- *)

let test_tn001_rank () =
  let op = Ir.Kernels.gemm ~ni:16 ~nj:16 ~nk:16 in
  let df = Df.Zoo.gemm_k_p_ij_t () in
  (* rank-1 dataflow on a rank-2 array *)
  let spec = Arch.Repository.find "tpu-8x8-systolic" in
  let ds = An.Checker.check spec op df in
  ignore (find_code "TN001" ds)

(* --- TN002: out-of-array, with witness ----------------------------- *)

let test_tn002_bounds () =
  let op = Ir.Kernels.gemm ~ni:16 ~nj:16 ~nk:16 in
  let df = Df.Zoo.gemm_ij_p_ijk_t ~p:9 () in
  let spec = Arch.Repository.find "tpu-8x8-systolic" in
  let ds = An.Checker.check spec op df in
  let d = find_code "TN002" ds in
  let w = witness_of d in
  (* the witness instance really does land outside the 8x8 array *)
  let th = Df.Dataflow.theta op df in
  (match Isl.Map.eval th w.An.Diagnostic.wpoint with
  | Some st -> check_bool "escapes" true (st.(0) > 7 || st.(1) > 7)
  | None -> Alcotest.fail "witness not in domain")

(* --- TN003: PE conflict, with witness pair ------------------------- *)

let test_tn003_conflict () =
  let op = Ir.Kernels.gemm ~ni:4 ~nj:2 ~nk:2 in
  let df =
    Df.Dataflow.make ~name:"conflicting"
      ~space:Isl.Aff.[ Mod (Var "i", 2) ]
      ~time:Isl.Aff.[ Var "j"; Var "k" ]
  in
  let ds = An.Checker.check (d1_spec ~n:2 ()) op df in
  let d = find_code "TN003" ds in
  let w = witness_of d in
  (* the witness is a pair (n, n') of distinct instances sharing a
     stamp *)
  check_int "pair arity" 6 (Array.length w.An.Diagnostic.wpoint);
  let n = Array.sub w.An.Diagnostic.wpoint 0 3 in
  let n' = Array.sub w.An.Diagnostic.wpoint 3 3 in
  check_bool "distinct" true (n <> n');
  let th = Df.Dataflow.theta op df in
  check_bool "same stamp" true (Isl.Map.eval th n = Isl.Map.eval th n')

(* --- TN004: causality, with witness dependence pair ---------------- *)

let scan_op () =
  (* Y[i] = Y[i] + Y[i-1]: a loop-carried RAW chain *)
  Ir.Tensor_op.make ~name:"scan"
    ~iters:[ ("i", 1, 7) ]
    ~accesses:
      Ir.Tensor_op.
        [
          { tensor = "Y"; subscripts = [ Isl.Aff.Var "i" ]; direction = Write };
          {
            tensor = "Y";
            subscripts = [ Isl.Aff.Sub (Isl.Aff.Var "i", Isl.Aff.Int 1) ];
            direction = Read;
          };
        ]
    ()

let test_tn004_causality () =
  let op = scan_op () in
  let spec = d1_spec ~n:1 () in
  (* forward time: causal *)
  let fwd =
    Df.Dataflow.make ~name:"fwd" ~space:[ Isl.Aff.Int 0 ]
      ~time:[ Isl.Aff.Var "i" ]
  in
  check_bool "forward is causal" true
    (not
       (List.exists
          (fun d -> String.equal d.An.Diagnostic.code "TN004")
          (An.Checker.check spec op fwd)));
  (* reversed time: every dependence runs backwards *)
  let rev =
    Df.Dataflow.make ~name:"rev" ~space:[ Isl.Aff.Int 0 ]
      ~time:[ Isl.Aff.Sub (Isl.Aff.Int 8, Isl.Aff.Var "i") ]
  in
  let d = find_code "TN004" (An.Checker.check spec op rev) in
  let w = witness_of d in
  check_int "pair arity" 2 (Array.length w.An.Diagnostic.wpoint);
  (* the witness (i, i') is a real RAW pair: W(i) feeds R(i') with
     i' = i + 1, yet i executes later under reversed time *)
  check_int "raw pair" (w.An.Diagnostic.wpoint.(0) + 1)
    w.An.Diagnostic.wpoint.(1)

(* --- TN005: malformed interconnect --------------------------------- *)

let test_tn005_out_of_array () =
  let rel = P.map "{ PE[i] -> PE[j] : 0 <= i < 8 and j = i + 4 }" in
  let spec = custom_spec ~n:8 ~rel ~interval:1 in
  let d = find_code "TN005" (An.Checker.check_arch spec) in
  let w = witness_of d in
  (* the witness wire endpoint escapes the 8-wide array *)
  check_bool "endpoint escapes" true (w.An.Diagnostic.wpoint.(1) >= 8)

let test_tn005_self_loop () =
  let rel = P.map "{ PE[i] -> PE[j] : 0 <= i < 8 and j = i }" in
  let spec = custom_spec ~n:8 ~rel ~interval:1 in
  ignore (find_code "TN005" (An.Checker.check_arch spec))

let test_tn005_rank () =
  let rel = P.map "{ PE[i] -> PE[j] : 0 <= i < 8 and j = i + 1 }" in
  let spec =
    Arch.Spec.make ~pe:(Arch.Pe_array.d2 8 8)
      ~topology:(Arch.Interconnect.Custom { rel; interval = 1 })
      ~bandwidth:64 ()
  in
  ignore (find_code "TN005" (An.Checker.check_arch spec))

let test_builtin_archs_clean () =
  List.iter
    (fun (name, spec) ->
      match An.Checker.check_arch spec with
      | [] -> ()
      | d :: _ ->
          Alcotest.fail (name ^ ": " ^ An.Diagnostic.to_string d))
    Arch.Repository.all

(* --- TN006: infeasible reuse --------------------------------------- *)

let test_tn006_phantom_reuse () =
  (* One PE, a self-loop "wire" at transfer interval 2, and an input
     whose elements recur with period 2: the volume model would credit
     spatial reuse along the self-loop for every stamp t >= 2, but no
     wire exists. *)
  let op =
    Ir.Tensor_op.make ~name:"periodic"
      ~iters:[ ("i", 0, 7) ]
      ~accesses:
        Ir.Tensor_op.
          [
            {
              tensor = "Y";
              subscripts = [ Isl.Aff.Var "i" ];
              direction = Write;
            };
            {
              tensor = "X";
              subscripts = [ Isl.Aff.Mod (Isl.Aff.Var "i", 2) ];
              direction = Read;
            };
          ]
      ()
  in
  let rel = P.map "{ PE[p] -> PE[q] : 0 <= p < 1 and q = p }" in
  let spec = custom_spec ~n:1 ~rel ~interval:2 in
  let df =
    Df.Dataflow.make ~name:"seq" ~space:[ Isl.Aff.Int 0 ]
      ~time:[ Isl.Aff.Var "i" ]
  in
  let ds = An.Checker.check spec op df in
  let d = find_code "TN006" ds in
  ignore (witness_of d);
  (* the self-loop is also structurally malformed *)
  ignore (find_code "TN005" ds)

(* --- TN007 / TN008 / TN009 / TN010: lints -------------------------- *)

let test_tn007_empty_domain () =
  let op =
    Ir.Tensor_op.make ~name:"empty"
      ~iters:[ ("i", 0, -1) ]
      ~accesses:
        Ir.Tensor_op.
          [
            { tensor = "Y"; subscripts = [ Isl.Aff.Var "i" ]; direction = Write };
          ]
      ()
  in
  let df =
    Df.Dataflow.make ~name:"seq" ~space:[ Isl.Aff.Int 0 ]
      ~time:[ Isl.Aff.Var "i" ]
  in
  let d = find_code "TN007" (An.Checker.check (d1_spec ~n:1 ()) op df) in
  check_bool "warning" true (d.An.Diagnostic.severity = An.Diagnostic.Warning)

let test_tn008_unused_iterator () =
  let op = Ir.Kernels.gemm ~ni:8 ~nj:8 ~nk:8 in
  let df =
    Df.Dataflow.make ~name:"no-k"
      ~space:Isl.Aff.[ Var "i" ]
      ~time:Isl.Aff.[ Var "j" ]
  in
  let ds = An.Checker.check (d1_spec ()) op df in
  ignore (find_code "TN008" ds);
  (* collapsing k also produces PE conflicts *)
  ignore (find_code "TN003" ds)

let test_tn009_unknown_iterator () =
  let op = Ir.Kernels.gemm ~ni:8 ~nj:8 ~nk:8 in
  let df =
    Df.Dataflow.make ~name:"typo"
      ~space:Isl.Aff.[ Var "z" ]
      ~time:Isl.Aff.[ Var "j" ]
  in
  let ds = An.Checker.check (d1_spec ()) op df in
  let d = find_code "TN009" ds in
  check_bool "mentions z" true (contains d.An.Diagnostic.message "'z'")

let test_tn010_degenerate () =
  let op = Ir.Kernels.gemm ~ni:8 ~nj:8 ~nk:8 in
  let df =
    Df.Dataflow.make ~name:"idle-rows"
      ~space:Isl.Aff.[ Int 0; Mod (Var "j", 8) ]
      ~time:Isl.Aff.[ Var "i"; Var "k" ]
  in
  let spec = Arch.Repository.find "tpu-8x8-systolic" in
  let ds = An.Checker.check spec op df in
  let d = find_code "TN010" ds in
  check_bool "warning" true (d.An.Diagnostic.severity = An.Diagnostic.Warning);
  (* warnings only: the dataflow is still valid *)
  check_int "no errors" 0 (List.length (An.Diagnostic.errors ds))

(* --- TN011: raw relation not single-valued ------------------------- *)

let test_tn011_not_single_valued () =
  let sp = Isl.Space.make "S" [ "i" ] in
  let st = Isl.Space.make "ST" [ "t" ] in
  let dom = P.set "{ S[i] : 0 <= i < 4 }" in
  let m1 = Isl.Map.intersect_domain (Isl.Map.of_exprs sp st [ Isl.Aff.Var "i" ]) dom in
  let m2 =
    Isl.Map.intersect_domain
      (Isl.Map.of_exprs sp st [ Isl.Aff.Add (Isl.Aff.Var "i", Isl.Aff.Int 1) ])
      dom
  in
  let ds = An.Checker.check_theta_map (Isl.Map.union m1 m2) in
  let d = find_code "TN011" ds in
  ignore (witness_of d);
  (* i -> i+1 and i+1 -> i+1 also collide *)
  ignore (find_code "TN003" ds);
  (* a well-formed theta checks clean *)
  check_int "clean theta" 0
    (List.length (An.Checker.check_theta_map m1))

(* --- TN012: the counting sanitizer --------------------------------- *)

let test_tn012_count_verify () =
  (* force a mismatch with a stubbed reference evaluator *)
  let s = P.set "{ V[i] : 0 <= i < 5 }" in
  Isl.Count.verify_oracle_for_tests := Some (fun _ -> -1);
  Isl.Count.cache_clear ();
  Fun.protect
    ~finally:(fun () ->
      Isl.Count.verify_oracle_for_tests := None;
      Isl.Count.set_verify_mode None;
      Isl.Count.cache_clear ())
    (fun () ->
      match An.Checker.with_count_verify (fun () -> Isl.Set.card s) with
      | Ok n -> Alcotest.fail (Printf.sprintf "mismatch not caught: %d" n)
      | Error d ->
          check_bool "code" true (String.equal d.An.Diagnostic.code "TN012"));
  (* with the real reference evaluator the sanitizer is silent *)
  Isl.Count.cache_clear ();
  match An.Checker.with_count_verify (fun () -> Isl.Set.card s) with
  | Ok n -> check_int "verified count" 5 n
  | Error d -> Alcotest.fail (An.Diagnostic.to_string d)

(* --- precheck, JSON, registry -------------------------------------- *)

let test_precheck_cheap () =
  let op = Ir.Kernels.gemm ~ni:16 ~nj:16 ~nk:16 in
  let spec = Arch.Repository.find "tpu-8x8-systolic" in
  let bad = Df.Zoo.gemm_ij_p_ijk_t ~p:9 () in
  let good = Df.Zoo.gemm_ij_p_ijk_t () in
  check_bool "rejects oob" true
    (An.Diagnostic.errors (An.Checker.precheck spec op bad) <> []);
  check_int "accepts valid" 0
    (List.length (An.Checker.precheck spec op good))

let test_diagnostic_json () =
  let d =
    An.Diagnostic.make
      ~witness:(An.Diagnostic.witness ~note:"n" ~space:"S[i]" [| 3 |])
      "TN002" "msg"
  in
  let s = Tenet.Obs.Json.to_string (An.Diagnostic.to_json d) in
  List.iter
    (fun frag -> check_bool frag true (contains s frag))
    [ "TN002"; "out-of-array"; "error"; "S[i]"; "\"note\"" ]

let test_registry_codes_unique () =
  let cs = List.map (fun (c, _, _, _) -> c) An.Diagnostic.registry in
  check_int "unique" (List.length cs)
    (List.length (List.sort_uniq String.compare cs));
  check_bool "at least 12 codes" true (List.length cs >= 12)

(* --- satellites: parser positions, suggestions --------------------- *)

let test_parser_positions () =
  let expect_positioned f =
    match f () with
    | _ -> Alcotest.fail "expected Parse_error"
    | exception Isl.Parser.Parse_error msg ->
        check_bool ("offset in: " ^ msg) true (contains msg "at offset")
  in
  expect_positioned (fun () -> P.set "{ S[i] : 0 <= }");
  expect_positioned (fun () -> P.map "{ S[i] -> }");
  expect_positioned (fun () -> P.expr ~dims:[ "i" ] "i + ")

let test_suggestions () =
  Alcotest.(check (option string))
    "typo" (Some "gemm")
    (Tenet.Util.Text.suggest "gemmm" [ "gemm"; "conv" ]);
  Alcotest.(check (option string))
    "transposition" (Some "conv")
    (Tenet.Util.Text.suggest "cnov" [ "gemm"; "conv" ]);
  Alcotest.(check (option string))
    "far off" None
    (Tenet.Util.Text.suggest "transformer" [ "gemm"; "conv" ]);
  check_int "damerau" 1 (Tenet.Util.Text.edit_distance "conv" "cnov")

(* --- TN014-TN019: resource feasibility ----------------------------- *)

let generous spec =
  Arch.Spec.with_capacities ~scratchpad_bytes:(1 lsl 22) ~pe_regs:64
    ~link_width:8 ~pe_ports:8 ~max_fanout:64 ~dram_bw:4096 spec

(* generous capacities on every subject: the whole sweep stays clean,
   so the zoo is certified resource-feasible, not just structurally
   valid.  The non-conv subset keeps the runtime small; scripts/ci.sh
   runs the full sweep through `tenet check --all --capacities`. *)
let test_capacity_sweep_clean () =
  let subjects =
    List.filter
      (fun (s : An.Checker.subject) -> s.An.Checker.s_kernel <> "conv")
      (An.Checker.zoo_subjects ())
    |> List.map (fun (s : An.Checker.subject) ->
           { s with An.Checker.s_spec = generous s.An.Checker.s_spec })
  in
  check_bool "enough subjects" true (List.length subjects >= 30);
  List.iter
    (fun ((s : An.Checker.subject), ds) ->
      match ds with
      | [] -> ()
      | d :: _ ->
          Alcotest.fail
            (Printf.sprintf "%s / %s / %s: %s" s.An.Checker.s_arch
               s.An.Checker.s_kernel s.An.Checker.s_df.Df.Dataflow.name
               (An.Diagnostic.to_string d)))
    (An.Checker.check_subjects subjects)

let gemm8 () = Ir.Kernels.gemm ~ni:8 ~nj:8 ~nk:8

let test_tn014_pe_regs () =
  let op = gemm8 () in
  let df = Df.Zoo.gemm_ij_p_ijk_t () in
  let spec =
    Arch.Spec.with_capacities ~pe_regs:1
      (Arch.Repository.find "tpu-8x8-systolic")
  in
  let d = find_code "TN014" (An.Checker.check spec op df) in
  let w = witness_of d in
  (* the witness is a full (p.., t..) stamp of the dataflow *)
  check_int "stamp arity"
    (Df.Dataflow.n_space df + Df.Dataflow.n_time df)
    (Array.length w.An.Diagnostic.wpoint);
  (* gemm touches Y, A and B at every instance: 3 live words > 1 *)
  check_bool "mentions demand" true (contains d.An.Diagnostic.message "3");
  (* at 64 registers the same subject is clean *)
  check_int "clean at 64" 0
    (List.length
       (An.Checker.check
          (Arch.Spec.with_capacities ~pe_regs:64
             (Arch.Repository.find "tpu-8x8-systolic"))
          op df))

let test_tn014_scratchpad () =
  let op = gemm8 () in
  let df = Df.Zoo.gemm_ij_p_ijk_t () in
  let spec =
    Arch.Spec.with_capacities ~scratchpad_bytes:16
      (Arch.Repository.find "tpu-8x8-systolic")
  in
  let d = find_code "TN014" (An.Checker.check spec op df) in
  let w = witness_of d in
  check_int "time witness" (Df.Dataflow.n_time df)
    (Array.length w.An.Diagnostic.wpoint);
  check_bool "mentions bytes" true
    (contains d.An.Diagnostic.message "scratchpad_bytes = 16")

(* a 1D pipeline where each PE pulls two tensors from its left
   neighbor every stamp: the edge carries 2 transfers, a 1-wide link
   overflows *)
let shift2_op () =
  Ir.Tensor_op.make ~name:"shift2"
    ~iters:[ ("t", 0, 3); ("i", 0, 3) ]
    ~accesses:
      Ir.Tensor_op.
        [
          {
            tensor = "Y";
            subscripts = Isl.Aff.[ Var "i"; Var "t" ];
            direction = Write;
          };
          {
            tensor = "A";
            subscripts = Isl.Aff.[ Sub (Var "i", Var "t") ];
            direction = Read;
          };
          {
            tensor = "B";
            subscripts =
              Isl.Aff.[ Mul (Int 2, Sub (Var "i", Var "t")) ];
            direction = Read;
          };
        ]
    ()

let shift2_df () =
  Df.Dataflow.make ~name:"shift2-flow"
    ~space:Isl.Aff.[ Var "i" ]
    ~time:Isl.Aff.[ Var "t" ]

let test_tn015_link_contention () =
  let op = shift2_op () and df = shift2_df () in
  let spec = Arch.Spec.with_capacities ~link_width:1 (d1_spec ~n:4 ()) in
  let d = find_code "TN015" (An.Checker.check spec op df) in
  let w = witness_of d in
  (* witness = (t, source PE, destination PE): a real wire, one hop *)
  check_int "triple arity" 3 (Array.length w.An.Diagnostic.wpoint);
  check_int "one hop" 1
    (w.An.Diagnostic.wpoint.(2) - w.An.Diagnostic.wpoint.(1));
  (* a 2-wide link fits both tensors *)
  let wide = Arch.Spec.with_capacities ~link_width:2 (d1_spec ~n:4 ()) in
  check_bool "clean at 2" true
    (not (List.mem "TN015" (codes (An.Checker.check wide op df))))

let test_tn016_pe_ports () =
  let op = gemm8 () in
  let df = Df.Zoo.gemm_ij_p_ijk_t () in
  let spec =
    Arch.Spec.with_capacities ~pe_ports:1
      (Arch.Repository.find "tpu-8x8-systolic")
  in
  let d = find_code "TN016" (An.Checker.check spec op df) in
  ignore (witness_of d);
  (* the demand is the access count of the op, independent of size *)
  check_bool "mentions access count" true
    (contains d.An.Diagnostic.message
       (string_of_int (List.length op.Ir.Tensor_op.accesses)))

let test_tn017_fanout () =
  (* every PE reads the same A[t] each stamp over an all-to-all
     interval-0 fabric: the lex-least PE feeds the other 3 *)
  let op =
    Ir.Tensor_op.make ~name:"bcast"
      ~iters:[ ("t", 0, 3); ("i", 0, 3) ]
      ~accesses:
        Ir.Tensor_op.
          [
            {
              tensor = "Y";
              subscripts = Isl.Aff.[ Var "i"; Var "t" ];
              direction = Write;
            };
            { tensor = "A"; subscripts = [ Isl.Aff.Var "t" ]; direction = Read };
          ]
      ()
  in
  let df = shift2_df () in
  let rel =
    P.map "{ PE[i] -> PE[j] : 0 <= i < 4 and 0 <= j < 4 and i != j }"
  in
  let spec =
    Arch.Spec.with_capacities ~max_fanout:1 (custom_spec ~n:4 ~rel ~interval:0)
  in
  let d = find_code "TN017" (An.Checker.check spec op df) in
  let w = witness_of d in
  (* witness = (t, source PE); PE 0 is the lex-least holder *)
  check_int "pair arity" 2 (Array.length w.An.Diagnostic.wpoint);
  check_int "lex-least source" 0 w.An.Diagnostic.wpoint.(1);
  check_bool "three destinations" true (contains d.An.Diagnostic.message "3")

let test_tn018_dram () =
  let op = gemm8 () in
  let df = Df.Zoo.gemm_ij_p_ijk_t () in
  let spec =
    Arch.Spec.with_capacities ~dram_bw:1
      (Arch.Repository.find "tpu-8x8-systolic")
  in
  let d = find_code "TN018" (An.Checker.check spec op df) in
  let w = witness_of d in
  check_int "time witness" (Df.Dataflow.n_time df)
    (Array.length w.An.Diagnostic.wpoint)

let test_tn019_lint () =
  let spec = d1_spec () in
  (match An.Capacity.lint spec with
  | [ d ] ->
      check_bool "code" true (String.equal d.An.Diagnostic.code "TN019");
      check_bool "info" true (d.An.Diagnostic.severity = An.Diagnostic.Info);
      check_bool "not an error" true (not (An.Diagnostic.is_error d));
      ignore (witness_of d)
  | ds -> Alcotest.fail (Printf.sprintf "expected one TN019, got %d" (List.length ds)));
  (* a spec with any capacity declared does not lint *)
  check_int "declared -> silent" 0
    (List.length (An.Capacity.lint (Arch.Spec.with_capacities ~pe_regs:4 spec)));
  (* the checker itself never emits TN019 (CLI-only concern) *)
  let op = gemm8 () in
  let ds = An.Checker.check spec op (Df.Zoo.gemm_k_p_ij_t ()) in
  check_bool "no TN019 from check" true
    (not (List.exists (fun d -> d.An.Diagnostic.code = "TN019") ds))

(* --- ordering: reports are byte-stable ------------------------------ *)

let test_diagnostic_order () =
  (* a subject with several findings: collapsing k produces TN003 +
     TN008 at least *)
  let op = gemm8 () in
  let df =
    Df.Dataflow.make ~name:"no-k"
      ~space:Isl.Aff.[ Var "i" ]
      ~time:Isl.Aff.[ Var "j" ]
  in
  let ds = An.Checker.check (d1_spec ()) op df in
  check_bool "several findings" true (List.length ds >= 2);
  let sorted = List.sort An.Diagnostic.compare_diag ds in
  check_bool "already sorted" true (ds = sorted);
  (* stable across runs *)
  check_bool "deterministic" true
    (ds = An.Checker.check (d1_spec ()) op df);
  (* compare_diag is a total order keyed by code first *)
  let cs = codes ds in
  check_bool "codes ascending" true (cs = List.sort String.compare cs)

let test_explanations_cover_registry () =
  List.iter
    (fun (c, _, _, _) ->
      match An.Diagnostic.explain c with
      | Some text -> check_bool (c ^ " documented") true (String.length text > 40)
      | None -> Alcotest.fail (c ^ ": no explanation"))
    An.Diagnostic.registry;
  List.iter
    (fun (c, _) ->
      check_bool (c ^ " registered") true
        (List.exists (fun (c', _, _, _) -> c = c') An.Diagnostic.registry))
    An.Diagnostic.explanations;
  check_bool "unknown code" true (An.Diagnostic.explain "TN999" = None)

let test_zoo_find () =
  let df = Df.Zoo.find "gemm/(IJ-P | J,IJK-T)" in
  check_bool "qualified" true (String.length df.Df.Dataflow.name > 0);
  let df2 = Df.Zoo.find "(CRXRY-P | OY,OX-T) maeri" in
  check_bool "bare unique" true
    (String.equal df2.Df.Dataflow.name "(CRXRY-P | OY,OX-T) maeri");
  (match Df.Zoo.find "gemm/(IJ-P | J,IJK-TT)" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
      check_bool "suggests" true (contains msg "Did you mean"))

let () =
  Alcotest.run "analysis"
    [
      ( "sweep",
        [
          Alcotest.test_case "zoo x repository clean" `Quick test_sweep_clean;
          Alcotest.test_case "builtin archs clean" `Quick
            test_builtin_archs_clean;
        ] );
      ( "negative",
        [
          Alcotest.test_case "TN001 rank" `Quick test_tn001_rank;
          Alcotest.test_case "TN002 bounds" `Quick test_tn002_bounds;
          Alcotest.test_case "TN003 conflict" `Quick test_tn003_conflict;
          Alcotest.test_case "TN004 causality" `Quick test_tn004_causality;
          Alcotest.test_case "TN005 out of array" `Quick
            test_tn005_out_of_array;
          Alcotest.test_case "TN005 self loop" `Quick test_tn005_self_loop;
          Alcotest.test_case "TN005 rank" `Quick test_tn005_rank;
          Alcotest.test_case "TN006 phantom reuse" `Quick
            test_tn006_phantom_reuse;
          Alcotest.test_case "TN007 empty domain" `Quick
            test_tn007_empty_domain;
          Alcotest.test_case "TN008 unused iterator" `Quick
            test_tn008_unused_iterator;
          Alcotest.test_case "TN009 unknown iterator" `Quick
            test_tn009_unknown_iterator;
          Alcotest.test_case "TN010 degenerate" `Quick test_tn010_degenerate;
          Alcotest.test_case "TN011 not single-valued" `Quick
            test_tn011_not_single_valued;
          Alcotest.test_case "TN012 count verify" `Quick
            test_tn012_count_verify;
        ] );
      ( "api",
        [
          Alcotest.test_case "precheck" `Quick test_precheck_cheap;
          Alcotest.test_case "diagnostic json" `Quick test_diagnostic_json;
          Alcotest.test_case "registry codes" `Quick
            test_registry_codes_unique;
        ] );
      ( "capacity",
        [
          Alcotest.test_case "generous sweep clean" `Quick
            test_capacity_sweep_clean;
          Alcotest.test_case "TN014 pe regs" `Quick test_tn014_pe_regs;
          Alcotest.test_case "TN014 scratchpad" `Quick test_tn014_scratchpad;
          Alcotest.test_case "TN015 link contention" `Quick
            test_tn015_link_contention;
          Alcotest.test_case "TN016 pe ports" `Quick test_tn016_pe_ports;
          Alcotest.test_case "TN017 fanout" `Quick test_tn017_fanout;
          Alcotest.test_case "TN018 dram" `Quick test_tn018_dram;
          Alcotest.test_case "TN019 lint" `Quick test_tn019_lint;
          Alcotest.test_case "diagnostic order" `Quick test_diagnostic_order;
          Alcotest.test_case "explanations cover registry" `Quick
            test_explanations_cover_registry;
        ] );
      ( "satellites",
        [
          Alcotest.test_case "parser positions" `Quick test_parser_positions;
          Alcotest.test_case "suggestions" `Quick test_suggestions;
          Alcotest.test_case "zoo find" `Quick test_zoo_find;
        ] );
    ]
